"""Dependency-driven (dataflow) scheduling of the inversion pipeline.

The paper runs the recursion's ``2^d + 1`` jobs as a strictly
barrier-synchronized sequence; the block-level dataflow analyzer
(:mod:`repro.analysis.dataflow`) proves those barriers are not load-bearing —
every true dependency is a point-to-point block edge, and sibling LU subtrees
exchange no blocks at all (``DF001``).  :class:`DataflowScheduler` is the
runtime counterpart of that analysis: it consumes the same ground truth
(:meth:`~repro.analysis.model.PipelineModel.block_dag`) and launches each
pipeline unit the moment its DFS input blocks are *published* (sealed, per
the two-phase commit protocol) instead of when the previous step finishes.

Readiness is keyed on sealed blocks only:

* the scheduler registers a :attr:`~repro.dfs.filesystem.DFS.publish_listeners`
  hook, so a unit becomes ready exactly when the last of its input paths is
  atomically published — a downstream unit can never observe a pending
  (staged, unsealed) block, and a discarded speculative loser (whose staging
  is thrown away, never published) can never trigger readiness;
* combined with the master's per-task streaming publishes
  (:meth:`~repro.mapreduce.backends.ExecutionBackend.run_all`'s
  ``on_outcome``), a downstream unit whose inputs are a *subset* of an
  upstream job's outputs starts while the upstream job's unrelated
  partitions are still running.

Commit ordering stays deterministic: units publish their data blocks the
moment they finish (that is the whole point), but ``record.steps`` appends
and ``job:``/``phase:`` manifest writes are *deferred to plan order* by the
scheduler's flusher.  Manifests therefore form a plan-order prefix of the
completed work — a crash mid-schedule resumes exactly like a barrier-mode
crash, re-running (idempotently) anything published but not yet manifested.

Pre-flight: before launching anything the scheduler re-runs the defect rules
whose violation would make block-keyed scheduling unsound — ``DF002``
(write-before-read hazard), ``DF006`` (dependency cycle), ``DF007``
(generation-order violation) — and refuses to start on any finding.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Callable

from ..dfs.filesystem import DFS
from ..telemetry import spans as _spans
from ..telemetry.api import TraceConfig, resolve_tracer

#: Defect rules that make block-keyed scheduling unsound (the gate).
GATE_RULES = ("DF002", "DF006", "DF007")


@dataclass
class UnitSpec:
    """One schedulable unit of the pipeline, in plan order.

    A unit is either a whole MapReduce job (its map and reduce phases —
    intra-job dataflow is the JobTracker's business) or one serial master
    phase.  ``needs`` is the unit's external read set: every DFS path it
    reads that it does not write itself.  ``run(wait_seconds)`` executes the
    unit (in a scheduler thread) and returns an opaque completion payload;
    ``commit(payload)`` — called later, in plan order, from the scheduler's
    driving thread — appends the pipeline record entry and writes the
    manifest.  ``done`` marks units already committed by a previous run
    (resume): they are skipped entirely, their sealed outputs satisfying
    dependents via the initial scan.
    """

    name: str
    kind: str  # "job" | "phase"
    needs: frozenset[str]
    run: Callable[[float], Any]
    commit: Callable[[Any], None]
    done: bool = False


@dataclass
class SchedulerReport:
    """What one dataflow run actually did — the evidence for the tests.

    ``triggers[u]`` is the published path whose seal released unit ``u``
    (``""`` when the unit was ready at the initial scan — all inputs already
    on the DFS).  The dynamic dependency edges derived from it are the
    scheduler's observed counterpart of the static DAG's block edges.
    """

    launch_order: list[str] = field(default_factory=list)
    waits: dict[str, float] = field(default_factory=dict)
    triggers: dict[str, str] = field(default_factory=dict)
    skipped: list[str] = field(default_factory=list)

    def dynamic_edges(self, dag) -> list[tuple[str, str]]:
        """Observed (producer stage → released unit) edges, launch order."""
        out: list[tuple[str, str]] = []
        for name in self.launch_order:
            path = self.triggers.get(name, "")
            if not path:
                continue
            producer = dag.producers.get(path)
            if producer is not None:
                out.append((producer, name))
        return out


class SchedulerStallError(RuntimeError):
    """No unit is ready or running yet the schedule is incomplete.

    Either the dependency structure has a cycle the pre-flight missed (it
    cannot, short of a corrupted model) or a unit depends on a path nothing
    publishes — the diagnostic lists every stuck unit with its missing
    blocks.
    """


class DataflowScheduler:
    """Launch pipeline units on block availability; commit in plan order.

    One scheduler drives one pipeline run.  The driving thread owns the
    launch loop and the plan-order flusher; each launched unit runs on its
    own thread (bounded by ``max_inflight``), where the real parallelism
    comes from the execution backend underneath.  All shared state is
    guarded by ``_cond``; the publish listener and unit threads only flip
    state and notify — blocking work (unit execution, commits, joins) stays
    outside the lock.
    """

    def __init__(
        self,
        *,
        dfs: DFS,
        units: list[UnitSpec],
        model=None,
        telemetry: TraceConfig | None = None,
        max_inflight: int | None = None,
    ) -> None:
        names = [u.name for u in units]
        if len(set(names)) != len(names):
            raise ValueError("unit names must be unique")
        self._dfs = dfs
        self._units = list(units)
        self._by_name = {u.name: u for u in units}
        self._plan_index = {u.name: i for i, u in enumerate(units)}
        self._model = model
        self._dag = model.block_dag() if model is not None else None
        self._telemetry = telemetry
        self._max_inflight = max_inflight or min(32, max(4, len(units)))
        self._cond = threading.Condition()
        # -- state below is guarded-by: _cond --------------------------------
        self._needs_left: dict[str, set[str]] = {}  # guarded-by: _cond
        self._waiters: dict[str, set[str]] = {}  # guarded-by: _cond
        self._ready: deque[str] = deque()  # guarded-by: _cond
        self._ready_at: dict[str, float] = {}  # guarded-by: _cond
        self._running: set[str] = set()  # guarded-by: _cond
        self._completed: dict[str, Any] = {}  # guarded-by: _cond
        self._failures: list[tuple[int, BaseException]] = []  # guarded-by: _cond
        self._flush_idx = 0  # guarded-by: _cond
        # Resolved here, in the constructing (driving) thread, where the
        # run's ambient tracer is still visible — unit threads start with
        # fresh contextvars and could not resolve it themselves.
        self._tracer = resolve_tracer(telemetry)
        self.report = SchedulerReport()

    # -- pre-flight ------------------------------------------------------------

    def _preflight(self) -> None:
        if self._model is None:
            return
        from ..analysis import PreflightError
        from ..analysis.dataflow import lint_dataflow

        findings = [
            f
            for f in lint_dataflow(self._model, self._dag)
            if f.rule in GATE_RULES
        ]
        if findings:
            raise PreflightError(findings)

    # -- readiness -------------------------------------------------------------

    def _install_units(self) -> None:
        """Register every unit's full need set (before any exists probe)."""
        with self._cond:
            for unit in self._units:
                if unit.done:
                    self._completed[unit.name] = None
                    self.report.skipped.append(unit.name)
                    continue
                left = set(unit.needs)
                self._needs_left[unit.name] = left
                if not left:
                    self._mark_ready_locked(unit.name, trigger="")
                    continue
                for path in left:
                    self._waiters.setdefault(path, set()).add(unit.name)

    def _mark_ready_locked(self, name: str, trigger: str) -> None:
        self._ready.append(name)
        self._ready_at[name] = time.perf_counter()
        self.report.triggers[name] = trigger
        self._cond.notify_all()

    def _satisfy(self, path: str, *, initial: bool = False) -> None:
        """Mark ``path`` sealed; release any unit it was the last input of.

        ``initial`` distinguishes the startup exists-scan from live publish
        events: scan releases record an empty trigger (the input predated
        the schedule), so ``report.triggers`` only credits real dynamic
        edges.
        """
        with self._cond:
            for name in self._waiters.pop(path, ()):
                left = self._needs_left.get(name)
                if left is None:
                    continue
                left.discard(path)
                if not left:
                    del self._needs_left[name]
                    self._mark_ready_locked(
                        name, trigger="" if initial else path
                    )

    def _on_publish(self, paths: list[str]) -> None:
        """DFS publish listener — fires *after* the atomic seal, from
        whatever thread published.  Must not raise."""
        for path in paths:
            self._satisfy(path)

    # -- unit execution --------------------------------------------------------

    def _unit_thread(self, name: str, wait_seconds: float) -> None:
        if self._tracer.enabled:
            # Unit threads start with fresh contextvars; activating the
            # run's tracer restores ambient span emission for the unit's
            # own spans and any work before them (before_job hooks,
            # auto-repair).
            _spans.activate(self._tracer)
        unit = self._by_name[name]
        try:
            for path in sorted(unit.needs):
                # The invariant the whole design rests on: readiness was
                # keyed on publishes, so every input is sealed and visible
                # (dfs.exists excludes pending files by construction).
                if not self._dfs.exists(path):
                    raise SchedulerStallError(
                        f"scheduler invariant violated: unit {name!r} "
                        f"launched before input {path!r} was published"
                    )
            payload = unit.run(wait_seconds)
        except BaseException as exc:  # noqa: BLE001 - routed to the driver
            with self._cond:
                self._failures.append((self._plan_index[name], exc))
                self._running.discard(name)
                self._cond.notify_all()
            return
        with self._cond:
            self._completed[name] = payload
            self._running.discard(name)
            self._cond.notify_all()

    # -- plan-order flusher ----------------------------------------------------

    def _take_flushable_locked(self) -> list[tuple[UnitSpec, Any]]:
        """Advance the flush cursor over completed units, in plan order.

        Stops at the first unit that is not complete — so a failure (or a
        still-running sibling) freezes the manifest prefix exactly where
        barrier mode would have stopped.  Returns each unit with its
        completion payload, read here under the lock so the commit call
        itself can run outside it.
        """
        out: list[tuple[UnitSpec, Any]] = []
        while self._flush_idx < len(self._units):
            unit = self._units[self._flush_idx]
            if unit.name not in self._completed:
                break
            self._flush_idx += 1
            if not unit.done:  # resumed units are already durable
                out.append((unit, self._completed[unit.name]))
        return out

    # -- driving loop ----------------------------------------------------------

    def run(self) -> SchedulerReport:
        """Drive the schedule to completion; returns the achieved schedule.

        On unit failure: stop launching, let inflight units drain, flush
        the completed plan-order prefix, then re-raise the failure of the
        earliest unit in plan order (deterministic regardless of which
        thread lost the race).
        """
        self._preflight()
        self._dfs.publish_listeners.append(self._on_publish)
        threads: list[threading.Thread] = []
        try:
            self._install_units()
            # Initial scan — after listener registration, so a publish
            # racing the scan is delivered either way (both paths converge
            # on the idempotent _satisfy).
            needed = set()
            with self._cond:
                for left in self._needs_left.values():
                    needed |= left
            for path in sorted(needed):
                if self._dfs.exists(path):
                    self._satisfy(path, initial=True)

            while True:
                with self._cond:
                    to_launch: list[tuple[str, float]] = []
                    if not self._failures:
                        while (
                            self._ready
                            and len(self._running) < self._max_inflight
                        ):
                            name = self._ready.popleft()
                            self._running.add(name)
                            wait = time.perf_counter() - self._ready_at[name]
                            to_launch.append((name, wait))
                    to_flush = self._take_flushable_locked()
                    finished = self._flush_idx == len(self._units)
                    drained = not self._running and not to_launch
                    failed = bool(self._failures)
                    stalled = (
                        not failed
                        and not finished
                        and drained
                        and not to_flush
                        and not self._ready
                    )
                    if stalled:
                        raise SchedulerStallError(self._stall_diagnosis())
                for unit, payload in to_flush:
                    unit.commit(payload)
                for name, wait in to_launch:
                    self.report.launch_order.append(name)
                    self.report.waits[name] = wait
                    thread = threading.Thread(
                        target=self._unit_thread,
                        args=(name, wait),
                        name=f"repro-sched-{name}",
                        daemon=True,
                    )
                    threads.append(thread)
                    thread.start()
                if finished:
                    return self.report
                if failed and drained:
                    break
                with self._cond:
                    launchable = self._ready and not self._failures and (
                        len(self._running) < self._max_inflight
                    )
                    if (
                        self._running
                        and not launchable
                        and not self._flushable_now_locked()
                    ):
                        # Nothing actionable until a unit finishes; the
                        # timeout is a belt-and-braces hedge only.
                        self._cond.wait(timeout=0.5)  # lint: ignore[CN006]
        finally:
            # Whatever the exit path, the listener must not outlive the run
            # and no unit thread may still be mutating shared state.
            try:
                self._dfs.publish_listeners.remove(self._on_publish)
            except ValueError:  # pragma: no cover - already removed
                pass
            for thread in threads:
                thread.join()
        # Failure exit: every inflight unit has drained; raise the
        # plan-order-first failure so chaos runs are deterministic.
        with self._cond:
            index, exc = min(self._failures, key=lambda pair: pair[0])
        raise exc

    def _flushable_now_locked(self) -> bool:
        return (
            self._flush_idx < len(self._units)
            and self._units[self._flush_idx].name in self._completed
        )

    def _stall_diagnosis(self) -> str:
        # Only called from run()'s stall check, with _cond already held.
        stuck = {
            name: sorted(left)
            for name, left in self._needs_left.items()  # lint: ignore[CN001]
        }
        lines = [
            "dataflow schedule stalled: no unit ready, none running, "
            f"{len(stuck)} waiting"
        ]
        for name in sorted(stuck, key=lambda n: self._plan_index[n]):
            missing = ", ".join(stuck[name][:4])
            more = len(stuck[name]) - 4
            if more > 0:
                missing += f", ... +{more}"
            lines.append(f"  {name}: missing {missing}")
        return "\n".join(lines)


__all__ = [
    "DataflowScheduler",
    "SchedulerReport",
    "SchedulerStallError",
    "UnitSpec",
]
