"""Shuffle phase: partition, sort, combine, and group map outputs.

Implements the contract between map and reduce: every pair a mapper emits is
routed to exactly one reduce partition by the job's partitioner; within a
partition, pairs are sorted by key and grouped so the reducer sees each key
once with all its values.  An optional combiner runs on each map task's local
output before it is "sent", shrinking shuffle traffic exactly as in Hadoop.
"""

from __future__ import annotations

import pickle
from collections import defaultdict
from typing import Any, Callable

from .counters import (
    COMBINE_INPUT_RECORDS,
    COMBINE_OUTPUT_RECORDS,
    Counters,
    TASK_GROUP,
)
from .job import JobConf, TaskContext
from .types import TaskAttemptId, TaskTrace


def _sort_key(key: Any) -> Any:
    """Total order for heterogeneous keys: group by type name, natural order
    within a type (so integer keys sort numerically, as Hadoop's typed
    comparators do)."""
    return (type(key).__name__, key)


def _sorted_keys(keys: list[Any]) -> list[Any]:
    try:
        return sorted(keys, key=_sort_key)
    except TypeError:
        # Same-type but non-comparable keys: fall back to a repr order, which
        # is still deterministic.
        return sorted(keys, key=lambda k: (type(k).__name__, repr(k)))


def partition_pairs(
    pairs: list[tuple[Any, Any]],
    partitioner: Callable[[Any, int], int],
    num_partitions: int,
) -> dict[int, list[tuple[Any, Any]]]:
    """Route each pair to its reduce partition."""
    buckets: dict[int, list[tuple[Any, Any]]] = defaultdict(list)
    for key, value in pairs:
        p = partitioner(key, num_partitions)
        if not 0 <= p < num_partitions:
            raise ValueError(
                f"partitioner returned {p} for key {key!r}, "
                f"outside [0, {num_partitions})"
            )
        buckets[p].append((key, value))
    return dict(buckets)

def sort_and_group(
    pairs: list[tuple[Any, Any]],
    *,
    sort_keys: bool = True,
    grouping_fn: Callable[[Any], Any] | None = None,
) -> list[tuple[Any, list[Any]]]:
    """Group pairs by key, sorting keys when requested (Hadoop always sorts;
    disabling the sort preserves arrival order for order-insensitive jobs).

    With ``grouping_fn`` (Hadoop's grouping comparator / secondary sort),
    pairs are sorted by their full *composite* key but grouped by
    ``grouping_fn(key)``: the reducer sees one group per natural key, whose
    values arrive in composite-key order, keyed by the group's first
    composite key.
    """
    if grouping_fn is not None:
        ordered = sorted(pairs, key=lambda kv: _sort_key(kv[0])) if sort_keys else pairs
        groups: list[tuple[Any, list[Any]]] = []
        index: dict[Any, int] = {}
        for key, value in ordered:
            natural = grouping_fn(key)
            if natural not in index:
                index[natural] = len(groups)
                groups.append((key, []))
            groups[index[natural]][1].append(value)
        return groups
    grouped: dict[Any, list[Any]] = defaultdict(list)
    order: list[Any] = []
    for key, value in pairs:
        if key not in grouped:
            order.append(key)
        grouped[key].append(value)
    keys = _sorted_keys(list(grouped)) if sort_keys else order
    return [(k, grouped[k]) for k in keys]


def run_combiner(
    conf: JobConf,
    pairs: list[tuple[Any, Any]],
    ctx: TaskContext,
) -> list[tuple[Any, Any]]:
    """Apply the job's combiner to one map task's local output.

    The combiner is run as a local reducer whose emits replace the original
    pairs; if the job has no combiner, pairs pass through untouched.
    """
    if conf.combiner_factory is None or not pairs:
        return pairs
    combiner = conf.combiner_factory()
    ctx.increment(TASK_GROUP, COMBINE_INPUT_RECORDS, len(pairs))
    saved = list(ctx.emitted)
    ctx.emitted.clear()
    combiner.setup(ctx)
    for key, values in sort_and_group(pairs, sort_keys=conf.sort_keys):
        combiner.reduce(ctx, key, iter(values))
    combiner.cleanup(ctx)
    combined = list(ctx.emitted)
    ctx.emitted.clear()
    ctx.emitted.extend(saved)
    ctx.increment(TASK_GROUP, COMBINE_OUTPUT_RECORDS, len(combined))
    return combined


class _CountingSink:
    """Write-only file object that counts bytes instead of keeping them."""

    __slots__ = ("nbytes",)

    def __init__(self) -> None:
        self.nbytes = 0

    def write(self, data: bytes) -> int:
        self.nbytes += len(data)
        return len(data)


def shuffle_size_bytes(pairs: list[tuple[Any, Any]]) -> int:
    """Serialized size of a batch of pairs — the bytes that would cross the
    network during shuffle (Hadoop moves serialized spill files).

    Streams the pickle into a counting sink, so sizing a large map output
    costs no allocation proportional to its serialized form (the count is
    byte-identical to ``len(pickle.dumps(pairs))`` at the same protocol).
    """
    if not pairs:
        return 0
    sink = _CountingSink()
    pickle.Pickler(sink, protocol=pickle.HIGHEST_PROTOCOL).dump(pairs)
    return sink.nbytes


def merge_map_outputs(
    per_map_partitions: list[dict[int, list[tuple[Any, Any]]]],
    num_partitions: int,
) -> dict[int, list[tuple[Any, Any]]]:
    """Merge the per-map partitioned outputs into per-reducer inputs,
    preserving map-task order within each partition (Hadoop's merge is
    stable per map output)."""
    merged: dict[int, list[tuple[Any, Any]]] = {p: [] for p in range(num_partitions)}
    for partitions in per_map_partitions:
        for p, pairs in partitions.items():
            merged[p].extend(pairs)
    return merged
