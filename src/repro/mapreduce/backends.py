"""Execution backends: the pluggable worker pools that run task attempts.

The :class:`ExecutionBackend` protocol is the contract between the
JobTracker and whatever executes its attempts:

* :meth:`~ExecutionBackend.run_all` runs a wave of thunks and returns
  results *or raised exceptions* positionally — backends never raise on a
  task's behalf, the master decides what a failure means;
* ``in_process`` tells the master whether thunks may capture live driver
  objects (closures over the DFS) or must be picklable descriptors;
* ``supports_shared_memory`` advertises that DFS payloads should be
  exported into shared segments (:mod:`repro.dfs.shm`) for the backend's
  workers.

Backends register by name in a factory registry (:func:`register_backend`)
so embedders can plug their own pools in behind :func:`make_executor`
without touching the engine.

Three built-ins:

* :class:`SerialExecutor` — inline, deterministic; the default for tests
  and reproducible experiment runs.
* :class:`ThreadPoolBackend` — a real concurrent pool.  NumPy's BLAS
  kernels release the GIL, so dense-block work runs in true parallel; the
  pure-Python shuffle and bookkeeping stay GIL-bound.
* :class:`ProcessPoolBackend` — a ``multiprocessing`` pool for when the
  GIL is the bottleneck.  Tasks must be picklable (the process-safety
  lint, ``repro lint --procsafety``, is the static gate and runs as a
  pre-flight here); DFS payloads travel via shared memory, not pickles.

Every backend accepts an optional per-attempt ``deadline``, measured from
*attempt start* (dispatch), never from wave submission — queue-wait behind
other tasks is the scheduler's fault and is not charged (Hadoop's
``mapred.task.timeout`` semantics).  A thread attempt that exceeds it is
abandoned (Python threads cannot be killed) and keeps running harmlessly
in the background; a process attempt is genuinely killed and its worker
respawned.  Either way the master sees a :class:`TaskTimeoutError` and
counts it as an ordinary failure.
"""

from __future__ import annotations

import concurrent.futures
import multiprocessing
import multiprocessing.connection
import threading
import time
from collections import deque
from typing import Any, Callable, Protocol, Sequence, runtime_checkable


class TaskTimeoutError(RuntimeError):
    """A task attempt exceeded its per-attempt deadline and was abandoned."""

    def __init__(self, deadline: float, detail: str = "") -> None:
        suffix = f" ({detail})" if detail else ""
        super().__init__(f"task attempt exceeded {deadline:.3g}s deadline{suffix}")
        self.deadline = deadline


class WorkerCrashError(RuntimeError):
    """A pool worker process died mid-attempt (killed, OOM, hard crash)."""


class TaskSerializationError(RuntimeError):
    """A task (or its result) could not cross the process boundary.

    The static gate for this is ``repro lint --procsafety`` (PS001–PS008);
    hitting this at runtime usually means a closure, lock, or other live
    driver object leaked into a task shipped to the processes backend.
    """


@runtime_checkable
class ExecutionBackend(Protocol):
    """What the JobTracker requires of a worker pool."""

    #: Parallel width; also the default node count for health tracking.
    max_workers: int
    #: Thunks may capture live driver objects (False ⇒ picklable descriptors).
    in_process: bool
    #: DFS payloads should be exported via :mod:`repro.dfs.shm`.
    supports_shared_memory: bool

    def run_all(
        self,
        thunks: Sequence[Callable[[], Any]],
        deadline: float | None = None,
        on_outcome: Callable[[int, Any], None] | None = None,
    ) -> list[Any]:
        """Run every thunk; return results or raised exceptions, positionally.

        ``on_outcome(index, outcome)``, when given, is invoked in the
        *calling* thread, exactly once per thunk, as soon as that thunk's
        outcome is known — before ``run_all`` returns.  This is how the
        master streams per-task completions (publish staged outputs while
        sibling tasks still run) without the backend creating any new
        concurrency.  An exception raised by ``on_outcome`` propagates out
        of ``run_all``; the backend must first put its pool back in a
        reusable state (kill or abandon this call's inflight attempts and
        free their slots).
        """
        ...

    def shutdown(self) -> None:
        """Release pool resources; idempotent."""
        ...


def _run_with_deadline(thunk: Callable[[], Any], deadline: float) -> Any:
    """Run ``thunk`` on a watchdog thread; give up after ``deadline`` seconds.

    Returns the thunk's result, the exception it raised, or a
    :class:`TaskTimeoutError` if it is still running at the deadline.  The
    watchdog thread is a daemon so a permanently hung attempt cannot block
    interpreter shutdown.
    """
    box: list[Any] = []

    def target() -> None:
        # The join below establishes happens-before for the single append,
        # and a post-timeout straggler write is never read.
        try:
            box.append(thunk())  # lint: ignore[CN008]
        except Exception as exc:  # collected, not raised: master decides
            box.append(exc)  # lint: ignore[CN008]

    runner = threading.Thread(target=target, daemon=True)
    runner.start()
    runner.join(deadline)
    if runner.is_alive():
        return TaskTimeoutError(deadline)
    return box[0]


class SerialExecutor:
    """Run callables inline, in submission order."""

    max_workers = 1
    in_process = True
    supports_shared_memory = False

    def run_all(
        self,
        thunks: Sequence[Callable[[], Any]],
        deadline: float | None = None,
        on_outcome: Callable[[int, Any], None] | None = None,
    ) -> list[Any]:
        """Run every thunk; returns results or raised exceptions, positionally.

        With a ``deadline``, each thunk runs on a watchdog thread so a hung
        attempt times out instead of stalling the wave forever.  Outcomes
        stream to ``on_outcome`` in submission order — serial execution is
        deterministic end to end.
        """
        results: list[Any] = []
        for i, thunk in enumerate(thunks):
            if deadline is not None:
                outcome = _run_with_deadline(thunk, deadline)
            else:
                try:
                    outcome = thunk()
                except Exception as exc:  # collected, not raised: master decides
                    outcome = exc
            results.append(outcome)
            if on_outcome is not None:
                on_outcome(i, outcome)
        return results

    def shutdown(self) -> None:  # noqa: B027 - interface symmetry
        pass


class ThreadPoolBackend:
    """Run callables on a shared thread pool.

    Deadlines are measured from each attempt's *start* on a pool thread.
    The collector first waits — uncharged — for the attempt to actually
    begin, then gives it ``deadline`` seconds of its own; an attempt that
    never starts because every slot is held by an abandoned hung attempt is
    cancelled and reported as starved rather than waiting forever.
    """

    in_process = True
    supports_shared_memory = False

    #: Collector poll interval while waiting for an attempt to start.
    _START_POLL_SECONDS = 0.005

    def __init__(self, max_workers: int = 8) -> None:
        if max_workers < 1:
            raise ValueError("max_workers must be >= 1")
        self.max_workers = max_workers
        self._pool = concurrent.futures.ThreadPoolExecutor(max_workers=max_workers)

    def run_all(
        self,
        thunks: Sequence[Callable[[], Any]],
        deadline: float | None = None,
        on_outcome: Callable[[int, Any], None] | None = None,
    ) -> list[Any]:
        if deadline is None:
            futures = {
                self._pool.submit(t): i for i, t in enumerate(thunks)
            }
            out: list[Any] = [None] * len(thunks)
            # Completion order, not submission order: a fast thunk's outcome
            # reaches on_outcome while slow siblings still run.  If
            # on_outcome raises, the remaining futures are abandoned (same
            # contract as a timed-out thread attempt: side effects are
            # idempotent per-attempt staging files nobody publishes).
            for fut in concurrent.futures.as_completed(futures):
                i = futures[fut]
                try:
                    out[i] = fut.result()
                except Exception as exc:
                    out[i] = exc
                if on_outcome is not None:
                    on_outcome(i, out[i])
            return out
        return self._run_all_with_deadline(thunks, deadline, on_outcome)

    def _run_all_with_deadline(
        self,
        thunks: Sequence[Callable[[], Any]],
        deadline: float,
        on_outcome: Callable[[int, Any], None] | None = None,
    ) -> list[Any]:
        n = len(thunks)
        started = [0.0] * n
        start_events = [threading.Event() for _ in range(n)]

        def wrap(i: int, thunk: Callable[[], Any]) -> Callable[[], Any]:
            def attempt() -> Any:
                # Single writer per slot; the event's set() publishes the
                # timestamp to the collector (happens-before via Event).
                started[i] = time.perf_counter()  # lint: ignore[CN008]
                start_events[i].set()
                return thunk()

            return attempt

        futures = [
            self._pool.submit(wrap(i, t)) for i, t in enumerate(thunks)
        ]
        results: list[Any] = []
        abandoned = 0
        for i, fut in enumerate(futures):
            # Queue wait is uncharged: poll until the attempt starts.  If
            # every pool slot is held by an attempt we already abandoned,
            # the queue can be wedged forever — cancel and report starvation
            # instead of hanging the wave.
            while not start_events[i].wait(timeout=self._START_POLL_SECONDS):
                if abandoned >= self.max_workers and fut.cancel():
                    break
            if fut.cancelled():
                outcome: Any = TaskTimeoutError(
                    deadline, detail="starved: pool wedged by hung attempts"
                )
            else:
                remaining = deadline - (time.perf_counter() - started[i])
                try:
                    outcome = fut.result(timeout=max(remaining, 0.0))
                except concurrent.futures.TimeoutError:
                    # The attempt itself blew its deadline.  Threads cannot
                    # be killed: abandon it (it keeps running; its result is
                    # discarded, which is safe because attempt side effects
                    # are idempotent per-attempt staging files).
                    fut.cancel()
                    abandoned += 1
                    outcome = TaskTimeoutError(deadline)
                except Exception as exc:
                    outcome = exc
            results.append(outcome)
            if on_outcome is not None:
                on_outcome(i, outcome)
        return results

    def shutdown(self) -> None:
        self._pool.shutdown(wait=True)


# -- process pool -------------------------------------------------------------


def _worker_main(conn, shared_tracker: bool) -> None:
    """Child-process loop: receive ``(seq, payload)``, execute, send back.

    The payload is either a picklable zero-argument callable or a
    :class:`~repro.mapreduce.remote.RemoteTask` descriptor.  A forked child
    inherits the driver's ambient tracer (and its exporters' file handles!)
    — the first thing the loop does is force the null tracer so child-side
    DFS-view operations never write to driver-owned sinks.
    """
    from ..dfs import shm
    from ..telemetry import spans
    from .remote import RemoteTask, execute_remote_task

    spans.activate(spans.NULL_TRACER)
    shm.set_child_tracker_shared(shared_tracker)
    segments: dict[str, Any] = {}
    while True:
        try:
            message = conn.recv()
        except (EOFError, OSError):
            break
        if message is None:
            break
        seq, payload = message
        try:
            if isinstance(payload, RemoteTask):
                value = execute_remote_task(payload, segments)
            else:
                value = payload()
            reply = ("ok", seq, value)
        except Exception as exc:
            reply = ("err", seq, exc)
        try:
            conn.send(reply)
        except Exception as exc:
            try:
                conn.send(
                    (
                        "err",
                        seq,
                        TaskSerializationError(
                            f"task {seq} result could not be pickled back "
                            f"to the driver: {exc!r}"
                        ),
                    )
                )
            except Exception:  # pragma: no cover - driver side went away
                break
    # Drop cyclic garbage that may still pin zero-copy views onto the
    # segments (e.g. a task's decode view caught in an uncollected cycle)
    # before detaching, so close() never sees exported pointers.
    import gc

    gc.collect()
    for seg in segments.values():
        try:
            seg.close()
        except BufferError:  # pragma: no cover - a view escaped anyway
            pass
    conn.close()


class _Worker:
    """One live pool worker: its process and the driver end of its pipe."""

    __slots__ = ("proc", "conn")

    def __init__(self, proc, conn) -> None:
        self.proc = proc
        self.conn = conn


class ProcessPoolBackend:
    """Run picklable tasks on a pool of persistent worker processes.

    One pending task per worker, dispatched over a dedicated pipe, so an
    attempt's deadline runs from the moment it is handed to an idle worker.
    A timed-out attempt is *really killed* — ``terminate()`` on the worker,
    which is replaced lazily — unlike thread backends, which can only
    abandon hung attempts.  A worker that dies mid-attempt surfaces as a
    :class:`WorkerCrashError` for that task and the pool self-heals.

    Construction runs the process-safety lint (``repro lint --procsafety``)
    over the engine once per process as a pre-flight gate; tasks that still
    fail to pickle at dispatch surface as :class:`TaskSerializationError`
    results for exactly the affected tasks.
    """

    in_process = False
    supports_shared_memory = True

    def __init__(
        self,
        max_workers: int = 8,
        *,
        start_method: str | None = None,
        preflight: bool = True,
    ) -> None:
        if max_workers < 1:
            raise ValueError("max_workers must be >= 1")
        if preflight:
            ensure_process_safety()
        self.max_workers = max_workers
        methods = multiprocessing.get_all_start_methods()
        if start_method is None:
            # fork is dramatically cheaper per worker and shares the
            # driver's resource tracker; _worker_main neutralizes the two
            # fork hazards (inherited tracer/exporters) explicitly.
            start_method = "fork" if "fork" in methods else "spawn"
        elif start_method not in methods:
            raise ValueError(
                f"start method {start_method!r} unavailable (have {methods})"
            )
        self._start_method = start_method
        self._ctx = multiprocessing.get_context(start_method)
        # Start the shared resource tracker *before* the first fork so
        # every forked child inherits it (see repro.dfs.shm docstring).
        from multiprocessing import resource_tracker

        resource_tracker.ensure_running()
        self._workers: list[_Worker | None] = [None] * max_workers
        # Slot leasing: concurrent run_all calls (the dataflow scheduler
        # drives waves of several live jobs at once) partition the worker
        # slots instead of colliding on them.  A slot's worker is touched
        # only by the run_all call holding its lease.
        self._lease_cond = threading.Condition()
        self._leased: set[int] = set()  # guarded-by: _lease_cond
        self._closed = False

    # -- worker lifecycle -----------------------------------------------------

    def _ensure_worker(self, slot: int) -> _Worker:
        worker = self._workers[slot]
        if worker is not None and worker.proc.is_alive():
            return worker
        parent_conn, child_conn = self._ctx.Pipe()
        proc = self._ctx.Process(
            target=_worker_main,
            args=(child_conn, self._start_method == "fork"),
            daemon=True,
            name=f"repro-pool-{slot}",
        )
        proc.start()
        child_conn.close()
        worker = _Worker(proc, parent_conn)
        self._workers[slot] = worker
        return worker

    def _dispose_worker(self, slot: int, *, kill: bool) -> None:
        worker = self._workers[slot]
        if worker is None:
            return
        self._workers[slot] = None
        if kill and worker.proc.is_alive():
            worker.proc.terminate()
        worker.proc.join(timeout=5.0)
        worker.conn.close()

    @staticmethod
    def _scrub_result_segment(thunk: Any) -> None:
        """After killing a worker, unlink the result segment its task may
        have created but never handed over."""
        name = getattr(thunk, "result_segment", None)
        if name:
            from ..dfs.shm import destroy_segment

            destroy_segment(name)

    # -- slot leasing ---------------------------------------------------------

    def _lease_slots(self, want: int, holding: int) -> list[int]:
        """Lease up to ``want`` free worker slots.

        Blocks only when this call holds nothing at all (``holding == 0``)
        and every slot is leased to a concurrent ``run_all`` — otherwise
        progress comes from the caller's own inflight attempts, so an empty
        grab returns immediately.
        """
        with self._lease_cond:
            while True:
                free = [
                    s for s in range(self.max_workers) if s not in self._leased
                ]
                if free or holding:
                    taken = free[:want]
                    self._leased.update(taken)
                    return taken
                self._lease_cond.wait()  # lint: ignore[CN006] - idiomatic condition wait

    def _release_slot(self, slot: int) -> None:
        with self._lease_cond:
            self._leased.discard(slot)
            self._lease_cond.notify_all()

    # -- execution ------------------------------------------------------------

    def run_all(
        self,
        thunks: Sequence[Callable[[], Any]],
        deadline: float | None = None,
        on_outcome: Callable[[int, Any], None] | None = None,
    ) -> list[Any]:
        if self._closed:
            raise RuntimeError("backend is shut down")
        n = len(thunks)
        results: list[Any] = [None] * n
        pending = deque(range(n))
        inflight: dict[int, tuple[int, float]] = {}  # slot -> (task, start)

        def settle(idx: int, outcome: Any) -> None:
            results[idx] = outcome
            if on_outcome is not None:
                on_outcome(idx, outcome)

        try:
            while pending or inflight:
                slots = (
                    self._lease_slots(len(pending), len(inflight))
                    if pending
                    else []
                )
                for slot in slots:
                    if not pending:
                        self._release_slot(slot)
                        continue
                    idx = pending.popleft()
                    try:
                        worker = self._ensure_worker(slot)
                        worker.conn.send((idx, thunks[idx]))
                    except Exception as exc:
                        # Connection.send pickles before writing any bytes,
                        # so a pickling failure leaves the worker clean and
                        # fails only this task.
                        self._release_slot(slot)
                        settle(
                            idx,
                            TaskSerializationError(
                                f"task could not be shipped to a worker "
                                f"process: {exc!r}; run `python -m repro "
                                f"lint --procsafety` to find the "
                                f"unpicklable capture"
                            ),
                        )
                        continue
                    inflight[slot] = (idx, time.perf_counter())
                if not inflight:
                    continue
                timeout = None
                if deadline is not None:
                    now = time.perf_counter()
                    timeout = max(
                        0.0,
                        min(start for _, start in inflight.values())
                        + deadline
                        - now,
                    )
                conn_to_slot = {
                    self._workers[slot].conn: slot for slot in inflight
                }
                ready = multiprocessing.connection.wait(
                    list(conn_to_slot), timeout=timeout
                )
                for conn in ready:
                    slot = conn_to_slot[conn]
                    idx, _start = inflight.pop(slot)
                    try:
                        _tag, _seq, value = conn.recv()
                    except (EOFError, OSError):
                        exitcode = self._workers[slot].proc.exitcode
                        self._dispose_worker(slot, kill=False)
                        self._scrub_result_segment(thunks[idx])
                        self._release_slot(slot)
                        settle(
                            idx,
                            WorkerCrashError(
                                f"worker process died mid-attempt "
                                f"(exit code {exitcode})"
                            ),
                        )
                        continue
                    self._release_slot(slot)
                    settle(idx, value)
                if deadline is not None:
                    now = time.perf_counter()
                    for slot, (idx, start) in list(inflight.items()):
                        if now - start >= deadline:
                            del inflight[slot]
                            # A real kill, not an abandoned thread:
                            # terminate the worker and replace it at next
                            # dispatch.
                            self._dispose_worker(slot, kill=True)
                            self._scrub_result_segment(thunks[idx])
                            self._release_slot(slot)
                            settle(
                                idx,
                                TaskTimeoutError(
                                    deadline, detail="attempt killed"
                                ),
                            )
        except BaseException:
            # A fatal error propagating out of on_outcome (an injected
            # driver crash, a poisoned wave) — or a KeyboardInterrupt.
            # Leave the pool reusable: kill this call's inflight workers so
            # their half-finished attempts can never surface later, scrub
            # the result segments they may have created, free the leases.
            for slot, (idx, _start) in list(inflight.items()):
                self._dispose_worker(slot, kill=True)
                self._scrub_result_segment(thunks[idx])
                self._release_slot(slot)
            raise
        return results

    def shutdown(self) -> None:
        if self._closed:
            return
        self._closed = True
        for worker in self._workers:
            if worker is None:
                continue
            try:
                worker.conn.send(None)
            except Exception:
                pass
        # Graceful first (workers detach their shared segments on the
        # sentinel), escalate to kill only for wedged workers.
        for worker in self._workers:
            if worker is not None:
                worker.proc.join(timeout=5.0)
        for slot in range(self.max_workers):
            self._dispose_worker(slot, kill=True)


# -- process-safety pre-flight -------------------------------------------------

_PREFLIGHT_PASSED = False


def ensure_process_safety() -> None:
    """Run ``repro lint --procsafety`` over the engine before the first
    process pool is built (memoized per process).

    Raises ``RuntimeError`` listing the findings if the sweep is not clean:
    shipping task code with process-safety defects produces pickle errors
    or silent state divergence that is far harder to diagnose at runtime.
    """
    global _PREFLIGHT_PASSED
    if _PREFLIGHT_PASSED:
        return
    from ..analysis.procsafety import (
        analyze_procsafety_files,
        default_procsafety_files,
    )

    findings = analyze_procsafety_files(default_procsafety_files())
    if findings:
        shown = "; ".join(str(f) for f in findings[:5])
        raise RuntimeError(
            f"process-safety pre-flight failed with {len(findings)} "
            f"finding(s): {shown} — run `python -m repro lint --procsafety`"
        )
    _PREFLIGHT_PASSED = True


# -- registry ------------------------------------------------------------------

_BACKENDS: dict[str, Callable[[int], ExecutionBackend]] = {}


def register_backend(
    name: str,
    factory: Callable[[int], ExecutionBackend],
    *,
    replace: bool = False,
) -> None:
    """Register ``factory(max_workers) -> backend`` under ``name``."""
    if not replace and name in _BACKENDS:
        raise ValueError(f"backend {name!r} is already registered")
    _BACKENDS[name] = factory


def available_backends() -> list[str]:
    """Registered backend names, sorted."""
    return sorted(_BACKENDS)


def make_executor(kind: str, max_workers: int = 8) -> ExecutionBackend:
    """Factory keyed by registered name (``serial``/``threads``/``processes``
    plus anything added via :func:`register_backend`)."""
    factory = _BACKENDS.get(kind)
    if factory is None:
        known = ", ".join(repr(name) for name in available_backends())
        raise ValueError(f"unknown executor kind {kind!r} (use one of {known})")
    return factory(max_workers)


register_backend("serial", lambda max_workers: SerialExecutor())
register_backend("threads", ThreadPoolBackend)
register_backend("processes", ProcessPoolBackend)


__all__ = [
    "ExecutionBackend",
    "ProcessPoolBackend",
    "SerialExecutor",
    "TaskSerializationError",
    "TaskTimeoutError",
    "ThreadPoolBackend",
    "WorkerCrashError",
    "available_backends",
    "ensure_process_safety",
    "make_executor",
    "register_backend",
]
