"""The JobTracker: schedules task attempts, retries failures, merges results.

Scheduling is wave-based: all runnable attempts of a phase are submitted to
the worker pool together; failed tasks are resubmitted in the next wave with
an incremented attempt number, up to ``max_attempts`` (Hadoop's
``mapred.map.max.attempts`` semantics).  A task that exhausts its attempts
fails the whole job.

Speculative execution, when enabled, submits a duplicate attempt for every
task in a wave and commits the first success — the duplicate masks one-off
failures without paying retry latency, which is the behaviour Section 7.4
credits for the 8-hour (vs 5-hour) fault run completing at all.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from ..dfs.filesystem import DFS
from .counters import (
    Counters,
    FAILED_MAPS,
    FAILED_REDUCES,
    LAUNCHED_MAPS,
    LAUNCHED_REDUCES,
    TASK_GROUP,
)
from .faults import FaultPolicy, FailNever
from .job import JobConf
from .shuffle import merge_map_outputs
from .task import (
    MapAttemptResult,
    ReduceAttemptResult,
    run_map_attempt,
    run_reduce_attempt,
)
from .types import (
    InputSplit,
    JobId,
    JobResult,
    TaskAttemptId,
    TaskId,
    TaskKind,
)
from .worker import SerialExecutor, ThreadPoolBackend


class JobFailedError(RuntimeError):
    """A task exhausted its attempts; the job cannot complete."""

    def __init__(self, job_name: str, task: TaskId, last_error: Exception) -> None:
        super().__init__(f"job {job_name!r}: task {task} failed permanently: {last_error!r}")
        self.task = task
        self.last_error = last_error


@dataclass
class _PhaseStats:
    launched: int = 0
    failed: int = 0
    retries: dict[int, int] = None  # filled at phase end


class JobTracker:
    """Runs one job at a time against a DFS and a worker pool."""

    def __init__(
        self,
        dfs: DFS,
        executor: SerialExecutor | ThreadPoolBackend,
        fault_policy: FaultPolicy | None = None,
        speculative: bool = False,
    ) -> None:
        self.dfs = dfs
        self.executor = executor
        self.fault_policy = fault_policy or FailNever()
        self.speculative = speculative

    # -- generic phase runner --------------------------------------------------

    def _run_phase(
        self,
        conf: JobConf,
        kind: TaskKind,
        job_id: JobId,
        work_items: list[Any],
        run_one,
    ) -> tuple[list[Any], _PhaseStats]:
        """Drive one phase (map or reduce) to completion.

        ``work_items[i]`` is the input of logical task *i*; ``run_one(item,
        attempt_id)`` executes one attempt.  Returns per-task results in task
        order plus launch/failure statistics.
        """
        # Tell name-aware fault policies which job is running.
        if hasattr(self.fault_policy, "job_name"):
            self.fault_policy.job_name = conf.name

        stats = _PhaseStats()
        results: list[Any] = [None] * len(work_items)
        next_attempt = [0] * len(work_items)
        pending = list(range(len(work_items)))
        last_errors: dict[int, Exception] = {}

        while pending:
            # Build the wave: one attempt per pending task, plus a speculative
            # duplicate when enabled.
            wave: list[tuple[int, TaskAttemptId]] = []
            for idx in pending:
                copies = 2 if self.speculative else 1
                for _ in range(copies):
                    attempt_no = next_attempt[idx]
                    next_attempt[idx] += 1
                    if attempt_no >= conf.max_attempts:
                        break
                    attempt_id = TaskAttemptId(
                        task=TaskId(job=job_id, kind=kind, index=idx),
                        attempt=attempt_no,
                    )
                    wave.append((idx, attempt_id))
            if not wave:
                first_failed = pending[0]
                raise JobFailedError(
                    conf.name,
                    TaskId(job=job_id, kind=kind, index=first_failed),
                    last_errors.get(first_failed, RuntimeError("unknown failure")),
                )

            thunks = [
                (lambda item=work_items[idx], aid=attempt_id: run_one(item, aid))
                for idx, attempt_id in wave
            ]
            stats.launched += len(thunks)
            outcomes = self.executor.run_all(thunks)

            still_pending: set[int] = set(pending)
            for (idx, _attempt_id), outcome in zip(wave, outcomes):
                if isinstance(outcome, Exception):
                    stats.failed += 1
                    last_errors[idx] = outcome
                    continue
                if idx in still_pending:
                    # First success wins; later duplicates are discarded.
                    results[idx] = outcome
                    still_pending.discard(idx)
            exhausted = [
                idx
                for idx in still_pending
                if next_attempt[idx] >= conf.max_attempts
            ]
            if exhausted:
                idx = exhausted[0]
                raise JobFailedError(
                    conf.name,
                    TaskId(job=job_id, kind=kind, index=idx),
                    last_errors.get(idx, RuntimeError("unknown failure")),
                )
            pending = sorted(still_pending)

        stats.retries = {
            idx: attempts - 1
            for idx, attempts in enumerate(next_attempt)
            if attempts > 1
        }
        return results, stats

    # -- job execution ----------------------------------------------------------

    def run_job(self, conf: JobConf, job_id: JobId) -> JobResult:
        counters = Counters()

        # Map phase.
        def run_map(split: InputSplit, attempt_id: TaskAttemptId) -> MapAttemptResult:
            return run_map_attempt(self.dfs, conf, split, attempt_id, self.fault_policy)

        map_results, map_stats = self._run_phase(
            conf, TaskKind.MAP, job_id, list(conf.splits), run_map
        )
        counters.increment(TASK_GROUP, LAUNCHED_MAPS, map_stats.launched)
        counters.increment(TASK_GROUP, FAILED_MAPS, map_stats.failed)
        for res in map_results:
            counters.merge(res.counters)

        result = JobResult(
            job_id=job_id,
            name=conf.name,
            succeeded=True,
            map_traces=[r.trace for r in map_results],
            counters=counters,
            attempts_launched=map_stats.launched,
            attempts_failed=map_stats.failed,
            map_retries=map_stats.retries or {},
        )

        if conf.is_map_only:
            return result

        # Shuffle.
        merged = merge_map_outputs(
            [r.partitions for r in map_results], conf.num_reduce_tasks
        )

        # Reduce phase.
        def run_reduce(
            partition: list[tuple[Any, Any]], attempt_id: TaskAttemptId
        ) -> ReduceAttemptResult:
            return run_reduce_attempt(
                self.dfs, conf, partition, attempt_id, self.fault_policy
            )

        reduce_results, reduce_stats = self._run_phase(
            conf,
            TaskKind.REDUCE,
            job_id,
            [merged[p] for p in range(conf.num_reduce_tasks)],
            run_reduce,
        )
        counters.increment(TASK_GROUP, LAUNCHED_REDUCES, reduce_stats.launched)
        counters.increment(TASK_GROUP, FAILED_REDUCES, reduce_stats.failed)
        for res in reduce_results:
            counters.merge(res.counters)

        result.reduce_traces = [r.trace for r in reduce_results]
        result.reduce_retries = reduce_stats.retries or {}
        result.reduce_outputs = {
            p: reduce_results[p].output for p in range(conf.num_reduce_tasks)
        }
        result.attempts_launched += reduce_stats.launched
        result.attempts_failed += reduce_stats.failed
        return result
