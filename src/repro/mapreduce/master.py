"""The JobTracker: schedules task attempts, retries failures, merges results.

Scheduling is wave-based: all runnable attempts of a phase are submitted to
the worker pool together; failed tasks are resubmitted in the next wave with
an incremented attempt number, up to ``max_attempts`` (Hadoop's
``mapred.map.max.attempts`` semantics).  A task that exhausts its attempts
fails the whole job.

On top of the basic retry loop the tracker provides the failure-detection
machinery Section 7.4's end-to-end fault story depends on:

* **Backoff + deadlines** — a :class:`~repro.mapreduce.retry.RetryPolicy` on
  the job conf spaces retry waves with capped exponential backoff
  (deterministically jittered) and bounds each attempt's wall-clock time, so
  a *hung* task times out (:class:`~repro.mapreduce.worker.TaskTimeoutError`)
  instead of stalling its wave forever.
* **Node health / blacklisting** — every attempt is placed on a simulated
  worker node; consecutive failures on one node temporarily blacklist it
  (Hadoop's ``mapred.max.tracker.failures``), and a retried task always
  avoids the node where it last failed when an alternative exists.
* **Speculative execution** — when enabled, every task gets a duplicate
  attempt per wave and the first success commits; a task whose last attempt
  *timed out* also gets a speculative duplicate on retry even when global
  speculation is off, masking slow nodes the way Section 7.4 credits for the
  8-hour (vs 5-hour) fault run completing at all.
"""

from __future__ import annotations

import threading
import time
from contextlib import nullcontext
from dataclasses import dataclass, field
from typing import Any

from ..dfs.commit import staging_dir
from ..dfs.filesystem import DFS
from ..telemetry.spans import NULL_TRACER, NullTracer, Span, SpanKind, Tracer
from .counters import (
    Counters,
    FAILED_MAPS,
    FAILED_REDUCES,
    LAUNCHED_MAPS,
    LAUNCHED_REDUCES,
    TASK_GROUP,
    TIMED_OUT_MAPS,
    TIMED_OUT_REDUCES,
)
from .faults import FaultPolicy, FailNever
from .job import JobConf
from .shuffle import merge_map_outputs
from .task import (
    MapAttemptResult,
    ReduceAttemptResult,
    run_map_attempt,
    run_reduce_attempt,
)
from .types import (
    InputSplit,
    JobId,
    JobResult,
    TaskAttemptId,
    TaskId,
    TaskKind,
)
from .backends import ExecutionBackend, TaskTimeoutError


@dataclass(frozen=True)
class AttemptFailure:
    """One failed task attempt: what ran where and how it died."""

    attempt: TaskAttemptId
    node: int | None
    error: Exception
    timed_out: bool = False
    #: Telemetry span of this attempt, when a tracer was active.
    span_id: str | None = None

    def describe(self) -> str:
        kind = "timeout" if self.timed_out else "error"
        where = f"attempt {self.attempt.attempt} on node {self.node}"
        if self.span_id:
            where += f" (span {self.span_id})"
        return f"{where}: {kind} {self.error!r}"


class JobFailedError(RuntimeError):
    """A task exhausted its attempts; the job cannot complete.

    Carries the full attempt history (``attempts``) so callers — chaos
    campaign reports, tests, operators — can see *why* the task died, not
    just the final exception: which nodes it ran on, which attempts timed
    out, and every per-attempt error.
    """

    def __init__(
        self,
        job_name: str,
        task: TaskId,
        last_error: Exception,
        attempts: list[AttemptFailure] | None = None,
        trace_id: str | None = None,
        job_span_id: str | None = None,
    ) -> None:
        attempts = list(attempts or [])
        message = f"job {job_name!r}: task {task} failed permanently: {last_error!r}"
        if attempts:
            history = "; ".join(a.describe() for a in attempts)
            message += f" [history: {history}]"
        if trace_id:
            message += f" [trace {trace_id}]"
        super().__init__(message)
        self.job_name = job_name
        self.task = task
        self.last_error = last_error
        self.attempts = attempts
        #: Telemetry correlation: the trace and job span the failure happened
        #: under, when a tracer was active (``None`` otherwise).
        self.trace_id = trace_id
        self.job_span_id = job_span_id

    @property
    def failed_nodes(self) -> list[int]:
        """Nodes that hosted a failed attempt, in order (with repeats)."""
        return [a.node for a in self.attempts if a.node is not None]


class NodeHealth:
    """Per-node failure tracking with temporary blacklisting and decay.

    A node accumulating ``max_failures`` consecutive task failures is
    blacklisted for ``blacklist_window`` scheduling waves; any success resets
    its count, and when a blacklist expires the count is cleared so the node
    gets a fresh chance (decay).  With every node blacklisted the tracker
    schedules on all of them — degraded beats deadlocked.

    All mutable state is guarded by ``_lock``: the tracker mutates health
    from its scheduling loop while speculative/timed-out attempt bookkeeping
    and chaos-campaign snapshots may read it from other threads (CN001 —
    blacklist decay reads were previously lock-free).
    """

    def __init__(
        self, num_nodes: int, max_failures: int = 3, blacklist_window: int = 3
    ) -> None:
        if num_nodes < 1:
            raise ValueError("need at least one node")
        if max_failures < 1:
            raise ValueError("max_failures must be >= 1")
        if blacklist_window < 1:
            raise ValueError("blacklist_window must be >= 1")
        self.num_nodes = num_nodes
        self.max_failures = max_failures
        self.blacklist_window = blacklist_window
        self._lock = threading.Lock()
        self.consecutive_failures = [0] * num_nodes  # guarded-by: _lock
        self.total_failures = [0] * num_nodes  # guarded-by: _lock
        self._blacklist_left = [0] * num_nodes  # guarded-by: _lock
        self.blacklist_events = 0  # guarded-by: _lock
        self._rr = 0  # guarded-by: _lock

    def record_failure(self, node: int) -> None:
        with self._lock:
            self.consecutive_failures[node] += 1
            self.total_failures[node] += 1
            if (
                self.consecutive_failures[node] >= self.max_failures
                and self._blacklist_left[node] == 0
            ):
                self._blacklist_left[node] = self.blacklist_window
                self.blacklist_events += 1

    def record_success(self, node: int) -> None:
        with self._lock:
            self.consecutive_failures[node] = 0

    def _is_blacklisted_locked(self, node: int) -> bool:
        return self._blacklist_left[node] > 0

    def is_blacklisted(self, node: int) -> bool:
        with self._lock:
            return self._is_blacklisted_locked(node)

    def _blacklisted_nodes_locked(self) -> list[int]:
        return [
            i for i in range(self.num_nodes) if self._is_blacklisted_locked(i)
        ]

    def blacklisted_nodes(self) -> list[int]:
        with self._lock:
            return self._blacklisted_nodes_locked()

    def tick(self) -> None:
        """Advance one scheduling wave: blacklists decay toward expiry."""
        with self._lock:
            for node in range(self.num_nodes):
                if self._blacklist_left[node] > 0:
                    self._blacklist_left[node] -= 1
                    if self._blacklist_left[node] == 0:
                        self.consecutive_failures[node] = 0

    def pick_node(self, avoid: int | None = None) -> int:
        """Round-robin over healthy nodes, skipping ``avoid`` (the node the
        task last failed on) whenever any alternative exists."""
        with self._lock:
            candidates = [
                n
                for n in range(self.num_nodes)
                if not self._is_blacklisted_locked(n)
            ]
            if not candidates:
                candidates = list(range(self.num_nodes))
            if avoid is not None and len(candidates) > 1:
                candidates = [n for n in candidates if n != avoid] or candidates
            node = candidates[self._rr % len(candidates)]
            self._rr += 1
            return node

    def snapshot(self) -> dict[str, Any]:
        with self._lock:
            return {
                "consecutive_failures": list(self.consecutive_failures),
                "total_failures": list(self.total_failures),
                "blacklisted": self._blacklisted_nodes_locked(),
                "blacklist_events": self.blacklist_events,
            }


@dataclass
class _PhaseStats:
    launched: int = 0
    failed: int = 0
    timeouts: int = 0
    backoff_seconds: float = 0.0
    retries: dict[int, int] | None = None  # filled at phase end
    #: final paths the winning attempts published (output commit on).
    published: list[str] = field(default_factory=list)


class JobTracker:
    """Runs one job at a time against a DFS and a worker pool."""

    def __init__(
        self,
        dfs: DFS,
        executor: ExecutionBackend,
        fault_policy: FaultPolicy | None = None,
        speculative: bool = False,
        num_nodes: int | None = None,
        max_node_failures: int = 3,
        blacklist_window: int = 3,
    ) -> None:
        self.dfs = dfs
        self.executor = executor
        self.fault_policy = fault_policy or FailNever()
        self.speculative = speculative
        self.node_health = NodeHealth(
            num_nodes if num_nodes is not None else max(executor.max_workers, 1),
            max_failures=max_node_failures,
            blacklist_window=blacklist_window,
        )
        #: Lazily-built shared-memory exporter for out-of-process backends
        #: (:class:`~repro.dfs.shm.ShmExporter`); segments live for the
        #: tracker's lifetime and are retired by :meth:`shutdown`.
        #: Guarded by ``_exporter_lock``: the dataflow scheduler drives
        #: waves of several jobs concurrently and ShmExporter has no
        #: internal locking.
        self._exporter = None
        self._exporter_lock = threading.Lock()
        #: Whether the backend streams per-completion outcomes; custom
        #: backends without the ``on_outcome`` parameter fall back to
        #: post-wave processing.
        self._streams_outcomes = self._accepts_on_outcome(executor)

    @staticmethod
    def _accepts_on_outcome(executor: ExecutionBackend) -> bool:
        import inspect

        try:
            sig = inspect.signature(executor.run_all)
        except (TypeError, ValueError):  # pragma: no cover - C callables
            return False
        return "on_outcome" in sig.parameters

    def shutdown(self) -> None:
        """Retire tracker-owned resources (shared-memory exports)."""
        with self._exporter_lock:
            if self._exporter is not None:
                self._exporter.close()
                self._exporter = None

    def _export_namespace(self):
        """Sync the sealed namespace into shared segments (out-of-process
        dispatch); generation-keyed, so unchanged files are free."""
        with self._exporter_lock:
            if self._exporter is None:
                from ..dfs.shm import ShmExporter

                self._exporter = ShmExporter(self.dfs)
            return self._exporter.sync()

    def _absorb_remote(
        self,
        outcome: Any,
        idx: int,
        attempt_id: TaskAttemptId,
        node: int,
        kind: TaskKind,
        tracer: Tracer | NullTracer,
        wave_span: Span | None,
        attempt_spans: dict[tuple[int, int], Span],
    ) -> Any:
        """Land one out-of-process outcome: replay its write-back through the
        accounted DFS paths and record the attempt's TASK span driver-side.

        Mirrors the in-process thunk contract — returns the attempt result
        on success and the exception object on failure, so the wave's
        outcome loop (publish winner / discard staging / node health) is
        backend-agnostic.  DFS_WRITE spans emitted during the replay nest
        under the TASK span via the ambient context.
        """
        from .remote import materialize_remote_outcome

        if wave_span is None:
            if isinstance(outcome, Exception):
                return outcome
            try:
                materialize_remote_outcome(self.dfs, outcome)
            except Exception as exc:  # noqa: BLE001 - becomes attempt failure
                return exc
            return outcome.result
        try:
            with tracer.span(
                str(attempt_id),
                SpanKind.TASK,
                parent=wave_span,
                attrs={
                    "task": idx,
                    "attempt": attempt_id.attempt,
                    "node": node,
                    "phase": kind.value,
                },
            ) as tspan:
                attempt_spans[(idx, attempt_id.attempt)] = tspan
                if isinstance(outcome, Exception):
                    raise outcome
                materialize_remote_outcome(self.dfs, outcome)
                trace = outcome.result.trace
                tspan.set(
                    bytes_read=trace.bytes_read,
                    bytes_written=trace.bytes_written,
                    bytes_shuffled=trace.bytes_shuffled,
                    flops=trace.flops,
                )
        except Exception as exc:  # noqa: BLE001 - becomes attempt failure
            return exc
        # The attempt already ran in a child; stretch the span back so its
        # duration covers the attempt's wall clock, not just the replay.
        if tspan.end is not None:
            tspan.start = min(
                tspan.start, tspan.end - outcome.result.trace.wall_seconds
            )
        return outcome.result

    # -- generic phase runner --------------------------------------------------

    def _sleep(self, seconds: float) -> None:
        """Backoff sleep, isolated for tests to stub."""
        time.sleep(seconds)

    def _run_phase(
        self,
        conf: JobConf,
        kind: TaskKind,
        job_id: JobId,
        work_items: list[Any],
        run_one,
        tracer: Tracer | NullTracer = NULL_TRACER,
        job_span: Span | None = None,
    ) -> tuple[list[Any], _PhaseStats]:
        """Drive one phase (map or reduce) to completion.

        ``work_items[i]`` is the input of logical task *i*; ``run_one(item,
        attempt_id, node)`` executes one attempt on a simulated worker node.
        Returns per-task results in task order plus launch/failure statistics.

        With an enabled ``tracer``, each retry wave gets a WAVE span under
        ``job_span`` and each attempt a TASK span under its wave.  Task spans
        are opened *inside* the worker thread so DFS operations performed by
        the attempt nest under them; the parent is passed explicitly because
        worker threads do not inherit the driver's context.
        """
        # Register this job's name so name-aware fault policies resolve each
        # attempt against *its own* job, even when the dataflow scheduler
        # interleaves attempts of several live jobs.
        self.fault_policy.note_job(job_id, conf.name)

        # Out-of-process backends get picklable descriptors instead of
        # closures; fail fast (with the procsafety pointer) if they can't.
        in_process = getattr(self.executor, "in_process", True)
        if not in_process:
            from .remote import ensure_remote_runnable

            ensure_remote_runnable(conf)

        policy = conf.retry_policy
        deadline = policy.attempt_deadline if policy is not None else None
        stats = _PhaseStats()
        results: list[Any] = [None] * len(work_items)
        next_attempt = [0] * len(work_items)
        pending = list(range(len(work_items)))
        failures: dict[int, list[AttemptFailure]] = {i: [] for i in pending}
        last_failed_node: dict[int, int] = {}
        timed_out_tasks: set[int] = set()
        # Worker threads insert task spans concurrently (CN008: the traced()
        # closures escape into the executor); writes take spans_lock, reads
        # happen after run_all() returns (join point).
        spans_lock = threading.Lock()
        attempt_spans: dict[tuple[int, int], Span] = {}
        wave_no = 0

        def fail_permanently(idx: int) -> None:
            history = failures[idx]
            last = history[-1].error if history else RuntimeError("unknown failure")
            raise JobFailedError(
                conf.name,
                TaskId(job=job_id, kind=kind, index=idx),
                last,
                attempts=history,
                trace_id=tracer.trace_id or None,
                job_span_id=job_span.span_id if job_span is not None else None,
            )

        def make_thunk(idx: int, attempt_id: TaskAttemptId, node: int, wave_span):
            item = work_items[idx]
            if wave_span is None:
                return lambda: run_one(item, attempt_id, node)  # task-boundary

            def traced() -> Any:  # task-boundary
                with tracer.span(
                    str(attempt_id),
                    SpanKind.TASK,
                    parent=wave_span,
                    attrs={
                        "task": idx,
                        "attempt": attempt_id.attempt,
                        "node": node,
                        "phase": kind.value,
                    },
                ) as tspan:
                    # In-process backends only: these closures never cross a
                    # process boundary, so the captured lock is shareable.
                    # The ProcessPoolBackend path ships RemoteTask
                    # descriptors instead and records spans driver-side.
                    with spans_lock:  # lint: ignore[PS007]
                        attempt_spans[(idx, attempt_id.attempt)] = tspan
                    out = run_one(item, attempt_id, node)
                    trace = getattr(out, "trace", None)
                    if trace is not None:
                        tspan.set(
                            bytes_read=trace.bytes_read,
                            bytes_written=trace.bytes_written,
                            bytes_shuffled=trace.bytes_shuffled,
                            flops=trace.flops,
                        )
                    return out

            return traced

        while pending:
            # Backoff before a retry wave: the wave launches together, so
            # sleep the longest delay any of its tasks has earned.
            if policy is not None:
                delay = max(
                    (
                        policy.delay_for(next_attempt[idx], key=f"{job_id}:{kind.value}:{idx}")
                        for idx in pending
                    ),
                    default=0.0,
                )
                if delay > 0:
                    self._sleep(delay)
                    stats.backoff_seconds += delay
            # Build the wave: one attempt per pending task, plus a speculative
            # duplicate when globally enabled or when the task just timed out
            # (a hung attempt hints at a slow node; hedge the retry).
            wave: list[tuple[int, TaskAttemptId, int]] = []
            for idx in pending:
                copies = 2 if (self.speculative or idx in timed_out_tasks) else 1
                for _ in range(copies):
                    attempt_no = next_attempt[idx]
                    if attempt_no >= conf.max_attempts:
                        break
                    next_attempt[idx] += 1
                    attempt_id = TaskAttemptId(
                        task=TaskId(job=job_id, kind=kind, index=idx),
                        attempt=attempt_no,
                    )
                    node = self.node_health.pick_node(avoid=last_failed_node.get(idx))
                    wave.append((idx, attempt_id, node))
            if not wave:
                fail_permanently(pending[0])

            wave_ctx = (
                tracer.span(
                    f"{kind.value}-wave-{wave_no}",
                    SpanKind.WAVE,
                    parent=job_span,
                    attrs={"phase": kind.value, "wave": wave_no, "tasks": len(wave)},
                )
                if tracer.enabled
                else nullcontext(None)
            )
            still_pending: set[int] = set(pending)
            wave_timed_out: set[int] = set()
            with wave_ctx as wave_span:
                if in_process:
                    thunks = [
                        make_thunk(idx, attempt_id, node, wave_span)
                        for idx, attempt_id, node in wave
                    ]
                else:
                    from .remote import RemoteTask

                    manifest = self._export_namespace()
                    thunks = [
                        RemoteTask(
                            kind=kind,
                            conf=conf,
                            item=work_items[idx],
                            attempt_id=attempt_id,
                            node=node,
                            fault=self.fault_policy.plan(attempt_id, node),
                            manifest=manifest,
                        )
                        for idx, attempt_id, node in wave
                    ]
                stats.launched += len(thunks)

                def process_outcome(pos: int, outcome: Any) -> None:
                    """Land one attempt outcome the moment it is known.

                    Runs in the driver thread (the backend's ``on_outcome``
                    contract), so the bookkeeping needs no locks.  Publishing
                    the winner's staged files *here* — while sibling attempts
                    of the same wave still run — is what lets a dataflow
                    scheduler start downstream tasks before this phase ends.
                    """
                    idx, attempt_id, node = wave[pos]
                    if not in_process:
                        outcome = self._absorb_remote(
                            outcome, idx, attempt_id, node, kind,
                            tracer, wave_span, attempt_spans,
                        )
                    if isinstance(outcome, Exception):
                        if getattr(outcome, "fatal", False):
                            # Non-retryable (e.g. an injected driver crash):
                            # propagate immediately — no cleanup, exactly as
                            # if the master process died at this point.  The
                            # backend kills or abandons the wave's other
                            # inflight attempts on the way out.
                            raise outcome
                        stats.failed += 1
                        timed_out = isinstance(outcome, TaskTimeoutError)
                        if timed_out:
                            stats.timeouts += 1
                            # on_outcome runs in the driver thread (backend
                            # contract), so these mutations are single-threaded.
                            wave_timed_out.add(idx)  # lint: ignore[CN008]
                        with spans_lock:
                            failed_span = attempt_spans.get(
                                (idx, attempt_id.attempt)
                            )
                        failures[idx].append(
                            AttemptFailure(
                                attempt=attempt_id,
                                node=node,
                                error=outcome,
                                timed_out=timed_out,
                                span_id=(
                                    failed_span.span_id if failed_span else None
                                ),
                            )
                        )
                        last_failed_node[idx] = node  # lint: ignore[CN008]
                        self.node_health.record_failure(node)
                        # Roll back whatever the failed attempt staged (a
                        # timed-out zombie may re-create debris afterwards;
                        # it stays invisible under /_tmp until fsck).
                        self.dfs.discard_staging(
                            staging_dir(f"attempt-{attempt_id}")
                        )
                        return
                    self.node_health.record_success(node)
                    staged = getattr(outcome, "staged", None)
                    if idx in still_pending:
                        # First success wins; later duplicates are discarded.
                        # Task commit: atomically publish the winner's staged
                        # files to their final paths before recording success.
                        if staged:
                            self.dfs.publish(list(staged))
                            stats.published.extend(dst for _, dst in staged)
                        results[idx] = outcome  # lint: ignore[CN008]
                        still_pending.discard(idx)  # lint: ignore[CN008]
                        # Stamp the winning attempt so reconciliation counts
                        # each task's bytes exactly once even under
                        # speculation.
                        with spans_lock:
                            won = attempt_spans.get((idx, attempt_id.attempt))
                        if won is not None:
                            won.set(committed=True)
                    if staged is not None:
                        self.dfs.discard_staging(
                            staging_dir(f"attempt-{attempt_id}")
                        )

                if self._streams_outcomes:
                    self.executor.run_all(
                        thunks, deadline=deadline, on_outcome=process_outcome
                    )
                else:
                    # Custom backend without the streaming hook: classic
                    # post-wave processing, in submission order.
                    outcomes = self.executor.run_all(thunks, deadline=deadline)
                    for pos, outcome in enumerate(outcomes):
                        process_outcome(pos, outcome)
            wave_no += 1
            self.node_health.tick()

            exhausted = [
                idx
                for idx in still_pending
                if next_attempt[idx] >= conf.max_attempts
            ]
            if exhausted:
                fail_permanently(exhausted[0])
            pending = sorted(still_pending)
            timed_out_tasks = wave_timed_out & still_pending

        stats.retries = {
            idx: attempts - 1
            for idx, attempts in enumerate(next_attempt)
            if attempts > 1
        }
        return results, stats

    # -- job execution ----------------------------------------------------------

    def run_job(
        self,
        conf: JobConf,
        job_id: JobId,
        tracer: Tracer | NullTracer = NULL_TRACER,
        job_span: Span | None = None,
    ) -> JobResult:
        counters = Counters()

        # Map phase.
        def run_map(
            split: InputSplit, attempt_id: TaskAttemptId, node: int
        ) -> MapAttemptResult:
            return run_map_attempt(
                self.dfs, conf, split, attempt_id, self.fault_policy, node=node
            )

        map_results, map_stats = self._run_phase(
            conf, TaskKind.MAP, job_id, list(conf.splits), run_map,
            tracer=tracer, job_span=job_span,
        )
        counters.increment(TASK_GROUP, LAUNCHED_MAPS, map_stats.launched)
        counters.increment(TASK_GROUP, FAILED_MAPS, map_stats.failed)
        if map_stats.timeouts:
            counters.increment(TASK_GROUP, TIMED_OUT_MAPS, map_stats.timeouts)
        for res in map_results:
            counters.merge(res.counters)

        result = JobResult(
            job_id=job_id,
            name=conf.name,
            succeeded=True,
            map_traces=[r.trace for r in map_results],
            counters=counters,
            attempts_launched=map_stats.launched,
            attempts_failed=map_stats.failed,
            attempts_timed_out=map_stats.timeouts,
            backoff_seconds=map_stats.backoff_seconds,
            map_retries=map_stats.retries or {},
            published_paths=list(map_stats.published),
        )

        if conf.is_map_only:
            return result

        # Shuffle.
        merged = merge_map_outputs(
            [r.partitions for r in map_results], conf.num_reduce_tasks
        )

        # Reduce phase.
        def run_reduce(
            partition: list[tuple[Any, Any]], attempt_id: TaskAttemptId, node: int
        ) -> ReduceAttemptResult:
            return run_reduce_attempt(
                self.dfs, conf, partition, attempt_id, self.fault_policy, node=node
            )

        reduce_results, reduce_stats = self._run_phase(
            conf,
            TaskKind.REDUCE,
            job_id,
            [merged[p] for p in range(conf.num_reduce_tasks)],
            run_reduce,
            tracer=tracer,
            job_span=job_span,
        )
        counters.increment(TASK_GROUP, LAUNCHED_REDUCES, reduce_stats.launched)
        counters.increment(TASK_GROUP, FAILED_REDUCES, reduce_stats.failed)
        if reduce_stats.timeouts:
            counters.increment(TASK_GROUP, TIMED_OUT_REDUCES, reduce_stats.timeouts)
        for res in reduce_results:
            counters.merge(res.counters)

        result.reduce_traces = [r.trace for r in reduce_results]
        result.reduce_retries = reduce_stats.retries or {}
        result.reduce_outputs = {
            p: reduce_results[p].output for p in range(conf.num_reduce_tasks)
        }
        result.attempts_launched += reduce_stats.launched
        result.attempts_failed += reduce_stats.failed
        result.attempts_timed_out += reduce_stats.timeouts
        result.backoff_seconds += reduce_stats.backoff_seconds
        result.published_paths.extend(reduce_stats.published)
        return result
