"""Multi-job pipelines with interleaved master-side phases.

The paper's inversion workflow (Figure 2) is a fixed pipeline: a partitioning
job, ``2^d - 1`` LU jobs, and a final inversion job — with small LU
decompositions executed *on the master node* between jobs (Algorithm 2 line 3).
:class:`Pipeline` records both kinds of step so that (a) the total number of
MapReduce jobs can be asserted against the paper's ``2^d + 1`` formula
(Table 3) and (b) the full step sequence can be replayed on the simulated
cluster, master phases serializing on one node exactly as in the paper's
Section 6.1 discussion.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Protocol, Sequence

from ..dfs.commit import CommitLog, CommitScope, _quote
from ..telemetry.api import TraceConfig, resolve_tracer
from ..telemetry.spans import SpanKind
from .job import JobConf
from .retry import RetryPolicy
from .runtime import MapReduceRuntime
from .types import JobResult, TaskTrace


class PhaseIO(Protocol):
    """Byte-accounting adapter a master phase runs against (e.g.
    :class:`~repro.inversion.driver.MasterIO`)."""

    def take_io(self) -> tuple[int, int]: ...


@dataclass
class MasterPhase:
    """A serial computation on the master node between jobs."""

    name: str
    flops: float = 0.0
    bytes_read: int = 0
    bytes_written: int = 0
    wall_seconds: float = 0.0


@dataclass
class PipelineRecord:
    """Ordered log of everything a pipeline executed."""

    steps: list[JobResult | MasterPhase] = field(default_factory=list)

    @property
    def job_results(self) -> list[JobResult]:
        return [s for s in self.steps if isinstance(s, JobResult)]

    @property
    def master_phases(self) -> list[MasterPhase]:
        return [s for s in self.steps if isinstance(s, MasterPhase)]

    @property
    def num_jobs(self) -> int:
        return len(self.job_results)

    def all_traces(self) -> list[TaskTrace]:
        traces: list[TaskTrace] = []
        for job in self.job_results:
            traces.extend(job.traces)
        return traces

    def total_wall_seconds(self) -> float:
        return sum(
            s.wall_seconds for s in self.steps
        )


class Pipeline:
    """Thin driver that runs jobs / master phases and records them in order.

    ``validators`` are pre-run checks applied to every :class:`JobConf`
    before it launches — the hook the inversion driver uses to run the
    :mod:`repro.analysis` purity checker over each job's mapper/reducer
    ahead of execution.  A validator signals a defect by raising.

    ``retry_policy`` and ``max_attempts`` are pipeline-wide defaults stamped
    onto each job conf before launch (a conf's own explicit retry policy
    wins), which is how ``InversionConfig.retry`` reaches every job of the
    inversion workflow without the job builders knowing about it.
    """

    def __init__(
        self,
        runtime: MapReduceRuntime,
        validators: Sequence[Callable[[JobConf], None]] = (),
        retry_policy: RetryPolicy | None = None,
        max_attempts: int | None = None,
        telemetry: TraceConfig | None = None,
        commit_log: CommitLog | None = None,
        output_commit: bool = True,
    ) -> None:
        self.runtime = runtime
        self.validators: list[Callable[[JobConf], None]] = list(validators)
        self.retry_policy = retry_policy
        self.max_attempts = max_attempts
        self.telemetry = telemetry
        #: Manifest log for step-done markers (``None`` disables manifests;
        #: task-level staging is controlled separately by ``output_commit``).
        self.commit_log = commit_log
        self.output_commit = output_commit
        self.record = PipelineRecord()
        self._phase_seq = 0  # guarded-by: _seq_lock
        # Only contended by the dataflow scheduler, whose unit threads open
        # phase scopes concurrently; barrier mode is single-threaded here.
        self._seq_lock = threading.Lock()

    # -- execute / commit split --------------------------------------------------
    #
    # ``run_job``/``master_phase`` execute AND commit in one call — the
    # barrier pipeline's behaviour.  The dataflow scheduler needs the two
    # halves apart: ``execute_*`` runs the step (publishing its data blocks
    # immediately, from a unit thread), while ``commit_*`` — the record
    # append and manifest write — is deferred to the scheduler's plan-order
    # flusher so ``record.steps`` and the ``job:``/``phase:`` manifests stay
    # in deterministic plan order under concurrent completion.

    def execute_job(
        self,
        conf: JobConf,
        *,
        parent_span=None,
        span_attrs: dict | None = None,
    ) -> JobResult:
        """Stamp defaults, validate, and run ``conf`` — without committing."""
        if self.retry_policy is not None and conf.retry_policy is None:
            conf.retry_policy = self.retry_policy
        if self.max_attempts is not None:
            conf.max_attempts = self.max_attempts
        if self.telemetry is not None and conf.telemetry is None:
            conf.telemetry = self.telemetry
        conf.output_commit = conf.output_commit and self.output_commit
        for validate in self.validators:
            validate(conf)
        return self.runtime.run_job(
            conf, parent_span=parent_span, span_attrs=span_attrs
        )

    def commit_job(
        self, name: str, result: JobResult, *, output_commit: bool = True
    ) -> None:
        """Record ``result`` and write the job's durable done-marker."""
        self.record.steps.append(result)
        if self.commit_log is not None and output_commit:
            # Written last: the job's durable done-marker.  A crash anywhere
            # before this line makes resume re-run the job (idempotently —
            # re-publishing overwrites the same final paths).
            self.commit_log.record(f"job:{name}", result.published_paths)

    def run_job(self, conf: JobConf) -> JobResult:
        result = self.execute_job(conf)
        self.commit_job(conf.name, result, output_commit=conf.output_commit)
        return result

    def master_phase(
        self,
        name: str,
        fn: Callable[[], Any],
        *,
        flops: float = 0.0,
        bytes_read: int = 0,
        bytes_written: int = 0,
        io: PhaseIO | None = None,
    ) -> Any:
        """Run ``fn`` serially on the (conceptual) master node, recording its
        declared resource usage for the cluster replay.

        When ``io`` is given, the bytes the phase moved are drained from it
        (``take_io``) and added to the declared counts — so callers don't
        have to reach back into the record, and the phase's telemetry span
        carries the byte attributes before it closes.

        With a ``commit_log`` and an ``io`` adapter that supports phase
        scoping (``begin_phase``/``end_phase``), the phase's writes are
        staged, published atomically after ``fn`` returns, and recorded in
        a ``phase:<name>`` manifest — the phase's durable done-marker.
        """
        scope = self._open_phase_scope(name, io)

        def run() -> Any:
            result = fn()
            if scope is not None:
                # Phase commit: one atomic publish, then the manifest.  A
                # crash before the manifest write re-runs the whole phase.
                published = scope.publish()
                io.end_phase()
                self.commit_log.record(f"phase:{name}", published)
            return result

        tracer = resolve_tracer(self.telemetry)
        start = time.perf_counter()
        if tracer.enabled:
            with tracer.span(name, SpanKind.MASTER_PHASE) as span:
                out = run()
                if io is not None:
                    r, w = io.take_io()
                    bytes_read += r
                    bytes_written += w
                span.set(
                    bytes_read=bytes_read, bytes_written=bytes_written, flops=flops
                )
        else:
            out = run()
            if io is not None:
                r, w = io.take_io()
                bytes_read += r
                bytes_written += w
        phase = MasterPhase(
            name=name,
            flops=flops,
            bytes_read=bytes_read,
            bytes_written=bytes_written,
            wall_seconds=time.perf_counter() - start,
        )
        self.record.steps.append(phase)
        return out

    def _open_phase_scope(
        self, name: str, io: PhaseIO | None
    ) -> CommitScope | None:
        if (
            self.commit_log is None
            or io is None
            or not hasattr(io, "begin_phase")
        ):
            return None
        with self._seq_lock:
            self._phase_seq += 1
            seq = self._phase_seq
        scope = CommitScope(self.runtime.dfs, f"phase-{seq}-{_quote(name)}")
        io.begin_phase(scope)
        return scope

    def execute_phase(
        self,
        name: str,
        fn: Callable[[], Any],
        *,
        flops: float = 0.0,
        bytes_read: int = 0,
        bytes_written: int = 0,
        io: PhaseIO | None = None,
        parent_span=None,
        span_attrs: dict | None = None,
    ) -> tuple[Any, MasterPhase, list[str] | None]:
        """Run a master phase and publish its writes — without committing.

        The dataflow half of :meth:`master_phase`: the phase's staged writes
        are published atomically the moment ``fn`` returns (so dependents'
        readiness can fire), but the record append and ``phase:`` manifest
        are left to :meth:`commit_phase`, which the scheduler calls in plan
        order.  Returns ``(fn's result, the MasterPhase record, published
        paths)`` — published is ``None`` when no commit scope applied (no
        commit log, or ``io`` without phase scoping).

        ``parent_span`` pins the MASTER_PHASE span's parent explicitly
        (required from scheduler unit threads, which do not inherit the
        driving thread's ambient span).
        """
        scope = self._open_phase_scope(name, io)
        published: list[str] | None = None if scope is None else []

        def run() -> Any:
            result = fn()
            if scope is not None:
                # Publish now — downstream readiness keys on the seal; the
                # manifest (the durable done-marker) waits for plan order.
                published.extend(scope.publish())
                io.end_phase()
            return result

        tracer = resolve_tracer(self.telemetry)
        start = time.perf_counter()
        if tracer.enabled:
            with tracer.span(
                name,
                SpanKind.MASTER_PHASE,
                parent=parent_span,
                attrs=dict(span_attrs) if span_attrs else None,
            ) as span:
                out = run()
                if io is not None:
                    r, w = io.take_io()
                    bytes_read += r
                    bytes_written += w
                span.set(
                    bytes_read=bytes_read, bytes_written=bytes_written, flops=flops
                )
        else:
            out = run()
            if io is not None:
                r, w = io.take_io()
                bytes_read += r
                bytes_written += w
        phase = MasterPhase(
            name=name,
            flops=flops,
            bytes_read=bytes_read,
            bytes_written=bytes_written,
            wall_seconds=time.perf_counter() - start,
        )
        return out, phase, published

    def commit_phase(
        self, name: str, phase: MasterPhase, published: list[str] | None
    ) -> None:
        """Record an executed phase and write its ``phase:`` manifest."""
        self.record.steps.append(phase)
        if self.commit_log is not None and published is not None:
            self.commit_log.record(f"phase:{name}", published)
