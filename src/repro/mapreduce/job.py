"""Job configuration and the user-facing Mapper/Reducer programming model.

The programming model mirrors Hadoop's:

* a :class:`Mapper` consumes one :class:`~repro.mapreduce.types.InputSplit`
  and emits ``(key, value)`` pairs through its context;
* emitted pairs are hash-partitioned, sorted, optionally combined, and fed to
  a :class:`Reducer` as ``(key, [values...])`` groups;
* both sides may also perform side-effect I/O against the DFS through the
  context — the paper's jobs write their real output (matrix blocks) straight
  to HDFS and emit only small control pairs (Section 5.1, Figure 5).

Per-task resource usage (flops, bytes) is recorded on the context's
:class:`~repro.mapreduce.types.TaskTrace` so runs can be replayed on the
simulated cluster.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Callable, Iterable, Iterator

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..dfs.commit import CommitScope
    from ..telemetry.api import TraceConfig

from ..dfs import formats
from ..dfs.filesystem import DFS
from .counters import (
    BYTES_READ,
    BYTES_WRITTEN,
    FILESYSTEM_GROUP,
    Counters,
)
from .retry import RetryPolicy
from .types import InputSplit, TaskAttemptId, TaskTrace


def default_partitioner(key: Any, num_partitions: int) -> int:
    """Hash partitioner; stable across processes (no PYTHONHASHSEED effects
    for the common key types used by the pipeline)."""
    if isinstance(key, (int, np.integer)):
        h = int(key)
    elif isinstance(key, str):
        h = sum((i + 1) * b for i, b in enumerate(key.encode("utf-8")))
    else:
        h = hash(key)
    return h % num_partitions


class TaskContext:
    """Execution context handed to mapper/reducer code.

    Wraps the shared DFS with per-task byte accounting and carries the emit
    buffer, counters, and the job's parameter dictionary.
    """

    def __init__(
        self,
        dfs: DFS,
        attempt_id: TaskAttemptId,
        params: dict[str, Any],
        trace: TaskTrace,
        counters: Counters,
        scope: "CommitScope | None" = None,
    ) -> None:
        self.dfs = dfs
        self.attempt_id = attempt_id
        self.params = params
        self.trace = trace
        self.counters = counters
        #: Two-phase output commit: when set, every write is staged under
        #: this attempt's private ``/_tmp`` directory as a pending file; the
        #: master publishes the winning attempt's files at task commit.
        self.scope = scope
        self._emitted: list[tuple[Any, Any]] = []

    # -- emit ----------------------------------------------------------------

    def emit(self, key: Any, value: Any) -> None:
        self._emitted.append((key, value))

    @property
    def emitted(self) -> list[tuple[Any, Any]]:
        return self._emitted

    # -- counters ------------------------------------------------------------

    def increment(self, group: str, name: str, amount: int = 1) -> None:
        self.counters.increment(group, name, amount)

    def report_flops(self, flops: float) -> None:
        """Declare floating-point work done outside the I/O helpers."""
        self.trace.flops += flops

    # -- accounted DFS I/O ----------------------------------------------------

    def _account_read(self, nbytes: int) -> None:
        self.trace.bytes_read += nbytes
        self.counters.increment(FILESYSTEM_GROUP, BYTES_READ, nbytes)

    def _account_write(self, nbytes: int) -> None:
        self.trace.bytes_written += nbytes
        self.counters.increment(FILESYSTEM_GROUP, BYTES_WRITTEN, nbytes)

    def read_bytes(self, path: str) -> bytes:
        data = self.dfs.read_bytes(path)
        self._account_read(len(data))
        return data

    def write_bytes(self, path: str, data: bytes) -> None:
        if self.scope is not None:
            self.scope.stage_bytes(path, data)
        else:
            self.dfs.write_bytes(path, data)
        self._account_write(len(data))

    def read_text(self, path: str) -> str:
        data = self.read_bytes(path)
        return data.decode("utf-8")

    def write_text(self, path: str, text: str) -> None:
        self.write_bytes(path, text.encode("utf-8"))

    def read_bytes_range(self, path: str, offset: int, length: int) -> bytes:
        data = self.dfs.read_range(path, offset, length)
        self._account_read(len(data))
        return data

    def read_matrix(self, path: str) -> np.ndarray:
        """Read a binary matrix file, served from the worker-shared decoded
        cache when one is attached to the DFS.

        Either way the task is accounted the file's full logical size (trace
        + counters); only *physical* DFS traffic disappears on a hit.  The
        result is read-only — copy before mutating.
        """
        cache = self.dfs.cache
        if cache is None:
            return formats.decode_matrix(self.read_bytes(path))
        m, nbytes = cache.read_through(self.dfs, path)
        self.dfs.stats.record_cache_request(nbytes)
        self._account_read(nbytes)
        return m

    def write_matrix(self, path: str, matrix: np.ndarray) -> None:
        self.write_bytes(path, formats.encode_matrix(matrix))

    def read_rows(self, path: str, r1: int, r2: int) -> np.ndarray:
        m = formats.read_rows(self.dfs, path, r1, r2)
        self._account_read(m.nbytes)
        return m

    def list_dir(self, path: str) -> list[str]:
        return self.dfs.list_dir(path)

    def exists(self, path: str) -> bool:
        return self.dfs.exists(path)


class Mapper:
    """Base mapper.  Override :meth:`map`; or, for record-oriented text jobs,
    override :meth:`map_record` and let the default :meth:`map` drive it
    (the default honours byte-range splits — see
    :func:`text_input_splits`)."""

    def setup(self, ctx: TaskContext) -> None:  # noqa: B027 - intentional hook
        pass

    def map(self, ctx: TaskContext, split: InputSplit) -> None:
        if split.path is None:
            raise NotImplementedError(
                "override map(), or give the split a text-file path for "
                "record-oriented mapping"
            )
        if isinstance(split.payload, tuple) and len(split.payload) == 2:
            start, length = split.payload
            text = ctx.read_bytes_range(split.path, start, length).decode("utf-8")
        else:
            text = ctx.read_text(split.path)
        for offset, line in enumerate(text.splitlines()):
            from .counters import MAP_INPUT_RECORDS, TASK_GROUP

            ctx.increment(TASK_GROUP, MAP_INPUT_RECORDS)
            self.map_record(ctx, offset, line)

    def map_record(self, ctx: TaskContext, key: Any, value: str) -> None:
        raise NotImplementedError

    def cleanup(self, ctx: TaskContext) -> None:  # noqa: B027
        pass


class Reducer:
    """Base reducer.  Override :meth:`reduce`, called once per key group."""

    def setup(self, ctx: TaskContext) -> None:  # noqa: B027
        pass

    def reduce(self, ctx: TaskContext, key: Any, values: Iterable[Any]) -> None:
        raise NotImplementedError

    def cleanup(self, ctx: TaskContext) -> None:  # noqa: B027
        pass


@dataclass
class JobConf:
    """Everything needed to run one MapReduce job.

    ``mapper_factory``/``reducer_factory`` are zero-argument callables so each
    task attempt gets a fresh, state-free instance (Hadoop instantiates per
    task the same way).  ``params`` is the equivalent of Hadoop's job
    configuration key/value payload, available on every context.
    """

    name: str
    mapper_factory: Callable[[], Mapper]
    splits: list[InputSplit]
    reducer_factory: Callable[[], Reducer] | None = None
    combiner_factory: Callable[[], Reducer] | None = None
    num_reduce_tasks: int = 1
    partitioner: Callable[[Any, int], int] = default_partitioner
    sort_keys: bool = True
    #: Secondary sort (Hadoop's grouping comparator): when set, pairs are
    #: *sorted* by their full key but *grouped* by ``grouping_fn(key)``, so a
    #: reducer sees one group per natural key with values arriving in
    #: composite-key order.  The reducer receives the first composite key of
    #: the group.  Route with a partitioner on the natural key so a group
    #: never splits across reducers.
    grouping_fn: Callable[[Any], Any] | None = None
    params: dict[str, Any] = field(default_factory=dict)
    max_attempts: int = 4
    #: Backoff/deadline behaviour for retries (:class:`RetryPolicy`); ``None``
    #: retries immediately with no attempt deadline, as Hadoop does by default.
    retry_policy: RetryPolicy | None = None
    #: Per-job telemetry override (:class:`~repro.telemetry.TraceConfig`).
    #: ``None`` falls back to the runtime's config, then the ambient tracer
    #: activated by :func:`repro.observe`.
    telemetry: "TraceConfig | None" = None
    #: Two-phase output commit (on by default): task attempts stage their
    #: DFS writes under ``/_tmp/attempt-<id>/`` and the master atomically
    #: publishes only the winning attempt's files — crashed, losing, and
    #: zombie attempts never touch the final namespace.
    output_commit: bool = True

    def __post_init__(self) -> None:
        if not self.splits:
            raise ValueError(f"job {self.name!r} has no input splits")
        if self.reducer_factory is None:
            self.num_reduce_tasks = 0
        elif self.num_reduce_tasks < 1:
            raise ValueError("num_reduce_tasks must be >= 1 when a reducer is set")
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")

    @property
    def is_map_only(self) -> bool:
        return self.reducer_factory is None


def text_input_splits(
    dfs: DFS, path: str, target_split_bytes: int
) -> list[InputSplit]:
    """Line-aligned byte-range splits of one text file — what Hadoop's
    TextInputFormat computes from block boundaries.

    Each split's payload is ``(start, length)``; the default
    :meth:`Mapper.map` reads exactly that range, so a large file fans out
    over several mappers without any mapper scanning the whole file.
    Boundaries are moved forward to the next newline so no record is split
    or duplicated.
    """
    if target_split_bytes < 1:
        raise ValueError("target_split_bytes must be >= 1")
    size = dfs.file_size(path)
    if size == 0:
        return [InputSplit(index=0, path=path, payload=(0, 0))]
    splits: list[InputSplit] = []
    start = 0
    index = 0
    while start < size:
        end = min(start + target_split_bytes, size)
        if end < size:
            # Advance to the next newline so the boundary is line-aligned.
            probe_at = end
            while probe_at < size:
                probe = dfs.read_range(path, probe_at, 1024)
                nl = probe.find(b"\n")
                if nl >= 0:
                    end = probe_at + nl + 1
                    break
                probe_at += len(probe)
            else:
                end = size
        splits.append(
            InputSplit(index=index, path=path, payload=(start, end - start), length=end - start)
        )
        start = end
        index += 1
    return splits


def splits_for_workers(num_workers: int) -> list[InputSplit]:
    """The paper's control-file inputs: split *i* carries integer *i*
    (Section 5.1), telling mapper *i* which role to play."""
    if num_workers < 1:
        raise ValueError("need at least one worker split")
    return [InputSplit(index=i, payload=i) for i in range(num_workers)]


@dataclass(frozen=True)
class TaskFactory:
    """A picklable zero-argument factory: ``cls`` bound to ``args``.

    The lambda-free replacement for ``lambda: SomeMapper(layout)`` in job
    confs — lambdas cannot cross the process boundary, so every pipeline
    factory uses this instead.  Instantiates a fresh object per call, same
    as Hadoop's per-task instantiation contract.
    """

    cls: type
    args: tuple = ()

    def __call__(self):
        return self.cls(*self.args)


class FnMapper(Mapper):
    """Adapter turning a plain function ``fn(ctx, split)`` into a Mapper."""

    def __init__(self, fn: Callable[[TaskContext, InputSplit], None]) -> None:
        self._fn = fn

    def map(self, ctx: TaskContext, split: InputSplit) -> None:
        self._fn(ctx, split)


class FnReducer(Reducer):
    """Adapter turning a plain function ``fn(ctx, key, values)`` into a Reducer."""

    def __init__(self, fn: Callable[[TaskContext, Any, Iterator[Any]], None]) -> None:
        self._fn = fn

    def reduce(self, ctx: TaskContext, key: Any, values: Iterable[Any]) -> None:
        self._fn(ctx, key, values)
