"""Retry policy: exponential backoff, deterministic jitter, attempt deadlines.

Hadoop retries a failed task attempt immediately on whatever tracker has a
free slot; in practice (and in every production scheduler since) retries are
spaced by exponential backoff so a systemic fault — an overloaded datanode, a
flapping network — is not hammered by the whole wave at once.  A
:class:`RetryPolicy` bundles the three knobs the JobTracker's wave loop
understands:

* ``base_delay`` / ``backoff`` / ``max_delay`` — classic capped exponential
  backoff between retry waves;
* ``jitter`` — the fraction of each delay that is randomized.  Jitter is
  *deterministic*: it is derived by hashing ``(seed, task key, attempt)``, so
  two runs of the same pipeline with the same seed sleep for identical
  durations — a requirement for reproducible chaos campaigns
  (:mod:`repro.chaos`);
* ``attempt_deadline`` — a wall-clock limit per task attempt.  An attempt
  that exceeds it is abandoned with a
  :class:`~repro.mapreduce.worker.TaskTimeoutError`, counted as a failure,
  and retried (with a speculative duplicate) elsewhere — the defence against
  *hung* tasks, which plain failure-retry cannot see.

The default policy is inert (no delay, no deadline), so jobs that do not opt
in behave exactly as before.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass


@dataclass(frozen=True)
class RetryPolicy:
    """Backoff and deadline configuration for task-attempt retries.

    Attributes
    ----------
    base_delay:
        Seconds to wait before the first retry wave (0 disables backoff).
    backoff:
        Multiplier applied per additional retry (exponential growth).
    max_delay:
        Upper bound on any single backoff sleep.
    jitter:
        Fraction in ``[0, 1]`` of each delay that is randomized (subtracted),
        decorrelating retries without sacrificing determinism.
    seed:
        Seed folded into the jitter hash.
    attempt_deadline:
        Per-attempt wall-clock limit in seconds; ``None`` means attempts may
        run forever (the pre-hardening behaviour).
    """

    base_delay: float = 0.0
    backoff: float = 2.0
    max_delay: float = 30.0
    jitter: float = 0.0
    seed: int = 0
    attempt_deadline: float | None = None

    def __post_init__(self) -> None:
        if self.base_delay < 0:
            raise ValueError("base_delay must be >= 0")
        if self.backoff < 1.0:
            raise ValueError("backoff must be >= 1")
        if self.max_delay < 0:
            raise ValueError("max_delay must be >= 0")
        if not 0.0 <= self.jitter <= 1.0:
            raise ValueError("jitter must be in [0, 1]")
        if self.attempt_deadline is not None and self.attempt_deadline <= 0:
            raise ValueError("attempt_deadline must be positive")

    def delay_for(self, attempt: int, key: str = "") -> float:
        """Backoff sleep before launching attempt number ``attempt``.

        Attempt 0 (the first try) is free.  ``key`` identifies the task so
        that different tasks jitter differently under the same seed.
        """
        if attempt <= 0 or self.base_delay <= 0:
            return 0.0
        raw = min(self.base_delay * self.backoff ** (attempt - 1), self.max_delay)
        if self.jitter > 0:
            digest = zlib.crc32(f"{self.seed}:{key}:{attempt}".encode())
            raw *= 1.0 - self.jitter * (digest / 0xFFFFFFFF)
        return raw


__all__ = ["RetryPolicy"]
