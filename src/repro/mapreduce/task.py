"""Execution of individual task attempts.

A map attempt runs the user mapper over its split, applies the combiner, and
partitions its output; a reduce attempt consumes its merged partition grouped
by key.  Each attempt gets a fresh context, counters object, and trace, so
retries and speculative duplicates are isolated from one another — attempt
side effects on the DFS must be idempotent, which the pipeline guarantees by
writing each result to a deterministic per-task file (Section 5.2: "no two
mappers write data into the same file").
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any

from ..dfs.commit import CommitScope
from ..dfs.filesystem import DFS
from .counters import (
    Counters,
    MAP_OUTPUT_RECORDS,
    REDUCE_INPUT_GROUPS,
    REDUCE_INPUT_RECORDS,
    REDUCE_OUTPUT_RECORDS,
    SHUFFLE_BYTES,
    TASK_GROUP,
)
from .faults import FaultPolicy
from .job import JobConf, TaskContext
from .shuffle import (
    partition_pairs,
    run_combiner,
    shuffle_size_bytes,
    sort_and_group,
)
from .types import InputSplit, TaskAttemptId, TaskKind, TaskTrace


@dataclass
class MapAttemptResult:
    attempt_id: TaskAttemptId
    partitions: dict[int, list[tuple[Any, Any]]]
    trace: TaskTrace
    counters: Counters
    #: ``(staged_path, final_path)`` pairs this attempt wrote under its
    #: staging directory; the master publishes them iff the attempt wins.
    staged: list[tuple[str, str]] = field(default_factory=list)


@dataclass
class ReduceAttemptResult:
    attempt_id: TaskAttemptId
    output: list[tuple[Any, Any]]
    trace: TaskTrace
    counters: Counters
    staged: list[tuple[str, str]] = field(default_factory=list)


def attempt_scope(dfs: DFS, conf: JobConf, attempt_id: TaskAttemptId) -> CommitScope | None:
    """The attempt's private staging scope (``None`` with the protocol off)."""
    if not conf.output_commit:
        return None
    return CommitScope(dfs, f"attempt-{attempt_id}")


def run_map_attempt(
    dfs: DFS,
    conf: JobConf,
    split: InputSplit,
    attempt_id: TaskAttemptId,
    fault_policy: FaultPolicy,
    node: int | None = None,
) -> MapAttemptResult:
    """Run one map attempt to completion (exceptions propagate to the master)."""
    counters = Counters()
    trace = TaskTrace(attempt=str(attempt_id), kind=TaskKind.MAP, node=node)
    scope = attempt_scope(dfs, conf, attempt_id)
    ctx = TaskContext(dfs, attempt_id, conf.params, trace, counters, scope=scope)
    start = time.perf_counter()

    fault_policy.maybe_fail(attempt_id, node)

    mapper = conf.mapper_factory()
    mapper.setup(ctx)
    mapper.map(ctx, split)
    mapper.cleanup(ctx)

    pairs = list(ctx.emitted)
    counters.increment(TASK_GROUP, MAP_OUTPUT_RECORDS, len(pairs))

    if conf.is_map_only:
        partitions: dict[int, list[tuple[Any, Any]]] = {}
    else:
        pairs = run_combiner(conf, pairs, ctx)
        partitions = partition_pairs(pairs, conf.partitioner, conf.num_reduce_tasks)
        shuffled = sum(shuffle_size_bytes(batch) for batch in partitions.values())
        trace.bytes_shuffled += shuffled
        counters.increment(TASK_GROUP, SHUFFLE_BYTES, shuffled)

    trace.wall_seconds = time.perf_counter() - start
    return MapAttemptResult(
        attempt_id,
        partitions,
        trace,
        counters,
        staged=list(scope.staged) if scope is not None else [],
    )


def run_reduce_attempt(
    dfs: DFS,
    conf: JobConf,
    partition: list[tuple[Any, Any]],
    attempt_id: TaskAttemptId,
    fault_policy: FaultPolicy,
    node: int | None = None,
) -> ReduceAttemptResult:
    """Run one reduce attempt over its merged, grouped partition."""
    if conf.reducer_factory is None:
        raise ValueError(f"job {conf.name!r} is map-only; no reduce to run")
    counters = Counters()
    trace = TaskTrace(attempt=str(attempt_id), kind=TaskKind.REDUCE, node=node)
    scope = attempt_scope(dfs, conf, attempt_id)
    ctx = TaskContext(dfs, attempt_id, conf.params, trace, counters, scope=scope)
    start = time.perf_counter()

    fault_policy.maybe_fail(attempt_id, node)

    reducer = conf.reducer_factory()
    reducer.setup(ctx)
    groups = sort_and_group(
        partition, sort_keys=conf.sort_keys, grouping_fn=conf.grouping_fn
    )
    counters.increment(TASK_GROUP, REDUCE_INPUT_RECORDS, len(partition))
    counters.increment(TASK_GROUP, REDUCE_INPUT_GROUPS, len(groups))
    for key, values in groups:
        reducer.reduce(ctx, key, iter(values))
    reducer.cleanup(ctx)

    output = list(ctx.emitted)
    counters.increment(TASK_GROUP, REDUCE_OUTPUT_RECORDS, len(output))
    trace.wall_seconds = time.perf_counter() - start
    return ReduceAttemptResult(
        attempt_id,
        output,
        trace,
        counters,
        staged=list(scope.staged) if scope is not None else [],
    )
