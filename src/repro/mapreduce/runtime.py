"""The MapReduce runtime facade.

One :class:`MapReduceRuntime` plays the role of a Hadoop cluster: it owns the
DFS, the worker pool, the job counter, and the *job launch overhead* — the
constant per-job cost that drives the paper's choice of the bound value ``nb``
(Section 5: "the time to LU decompose a matrix of order nb on the master node
[should be] approximately equal to the constant time required to launch a
MapReduce job") and the deviation from ideal scaling in Figure 6.
"""

from __future__ import annotations

import itertools
import time
from dataclasses import dataclass, field

from ..dfs.filesystem import DFS
from .faults import FaultPolicy
from .job import JobConf
from .master import JobFailedError, JobTracker
from .types import JobId, JobResult
from .worker import make_executor


@dataclass
class RuntimeConfig:
    """Knobs of a simulated Hadoop deployment."""

    num_workers: int = 4
    executor: str = "serial"  # "serial" | "threads"
    job_launch_overhead: float = 1.0  # simulated seconds per job (Section 5)
    speculative: bool = False

    def __post_init__(self) -> None:
        if self.num_workers < 1:
            raise ValueError("num_workers must be >= 1")
        if self.job_launch_overhead < 0:
            raise ValueError("job_launch_overhead must be >= 0")


class MapReduceRuntime:
    """Runs jobs and keeps their results for replay on the simulated cluster."""

    def __init__(
        self,
        dfs: DFS | None = None,
        config: RuntimeConfig | None = None,
        fault_policy: FaultPolicy | None = None,
    ) -> None:
        self.config = config or RuntimeConfig()
        self.dfs = dfs if dfs is not None else DFS()
        self._executor = make_executor(self.config.executor, self.config.num_workers)
        self._tracker = JobTracker(
            self.dfs,
            self._executor,
            fault_policy=fault_policy,
            speculative=self.config.speculative,
        )
        self._job_ids = itertools.count(1)
        self.history: list[JobResult] = []

    @property
    def num_workers(self) -> int:
        return self.config.num_workers

    def run_job(self, conf: JobConf) -> JobResult:
        """Run one job to completion; raises JobFailedError on permanent failure."""
        job_id = JobId(next(self._job_ids))
        start = time.perf_counter()
        result = self._tracker.run_job(conf, job_id)
        result.wall_seconds = time.perf_counter() - start
        self.history.append(result)
        return result

    def jobs_run(self) -> int:
        return len(self.history)

    def total_launch_overhead(self) -> float:
        """Simulated seconds spent launching jobs across the whole history."""
        return self.config.job_launch_overhead * len(self.history)

    def shutdown(self) -> None:
        self._executor.shutdown()

    def __enter__(self) -> "MapReduceRuntime":
        return self

    def __exit__(self, *exc) -> None:
        self.shutdown()


__all__ = ["MapReduceRuntime", "RuntimeConfig", "JobFailedError"]
