"""The MapReduce runtime facade.

One :class:`MapReduceRuntime` plays the role of a Hadoop cluster: it owns the
DFS, the worker pool, the job counter, and the *job launch overhead* — the
constant per-job cost that drives the paper's choice of the bound value ``nb``
(Section 5: "the time to LU decompose a matrix of order nb on the master node
[should be] approximately equal to the constant time required to launch a
MapReduce job") and the deviation from ideal scaling in Figure 6.

Fault-tolerance plumbing lives here too:

* ``before_job`` hooks fire ahead of every job launch — the injection point
  chaos nemeses use to kill datanodes, corrupt replicas, or crash the driver
  between pipeline stages;
* when ``auto_repair`` is on (the default), a
  :class:`~repro.dfs.health.HealthMonitor` repair pass runs before a job
  whenever the cluster topology changed since the last check (datanode
  killed or revived), so replication converges back to target without anyone
  calling ``rereplicate`` by hand.
"""

from __future__ import annotations

import itertools
import threading
import time
from dataclasses import dataclass
from typing import Callable

from ..dfs.filesystem import DFS
from ..dfs.health import RepairReport
from ..telemetry.api import TraceConfig, resolve_tracer
from ..telemetry.spans import SpanKind
from .faults import FaultPolicy
from .job import JobConf
from .master import JobFailedError, JobTracker
from .backends import make_executor
from .types import JobId, JobResult


@dataclass
class RuntimeConfig:
    """Knobs of a simulated Hadoop deployment."""

    num_workers: int = 4
    executor: str = "serial"  # "serial" | "threads" | "processes"
    #: Inter-step scheduling mode for pipelines driven on this runtime:
    #: ``"barrier"`` (default, the paper's strictly synchronized job
    #: sequence) or ``"dataflow"`` (launch each step when its input blocks
    #: are published — :mod:`repro.mapreduce.scheduler`).
    schedule: str = "barrier"
    job_launch_overhead: float = 1.0  # simulated seconds per job (Section 5)
    speculative: bool = False
    #: Run a DFS repair pass before a job when the topology changed
    #: (datanode death/revival) since the last check.
    auto_repair: bool = True
    #: Consecutive task failures on one node before it is blacklisted
    #: (Hadoop's ``mapred.max.tracker.failures``).
    max_node_failures: int = 3
    #: Scheduling waves a blacklisted node sits out before decaying back in.
    blacklist_window: int = 3
    #: Telemetry for every job this runtime runs
    #: (:class:`~repro.telemetry.TraceConfig`); ``None`` defers to each job
    #: conf and then to the ambient tracer (:func:`repro.observe`).
    telemetry: TraceConfig | None = None
    #: Capacity of the worker-shared decoded-block cache
    #: (:class:`~repro.dfs.cache.BlockCache`) attached to the runtime's DFS;
    #: 0 (default) leaves the DFS as the caller configured it.
    block_cache_bytes: int = 0

    def __post_init__(self) -> None:
        if self.num_workers < 1:
            raise ValueError("num_workers must be >= 1")
        if self.schedule not in ("barrier", "dataflow"):
            raise ValueError(
                f"unknown schedule {self.schedule!r} "
                "(use 'barrier' or 'dataflow')"
            )
        if self.block_cache_bytes < 0:
            raise ValueError("block_cache_bytes must be >= 0")
        if self.job_launch_overhead < 0:
            raise ValueError("job_launch_overhead must be >= 0")
        if self.max_node_failures < 1:
            raise ValueError("max_node_failures must be >= 1")
        if self.blacklist_window < 1:
            raise ValueError("blacklist_window must be >= 1")


class MapReduceRuntime:
    """Runs jobs and keeps their results for replay on the simulated cluster."""

    def __init__(
        self,
        dfs: DFS | None = None,
        config: RuntimeConfig | None = None,
        fault_policy: FaultPolicy | None = None,
    ) -> None:
        self.config = config or RuntimeConfig()
        self.dfs = dfs if dfs is not None else DFS()
        if self.config.block_cache_bytes:
            self.dfs.attach_cache(self.config.block_cache_bytes)
        self._executor = make_executor(self.config.executor, self.config.num_workers)
        self._tracker = JobTracker(
            self.dfs,
            self._executor,
            fault_policy=fault_policy,
            speculative=self.config.speculative,
            num_nodes=self.config.num_workers,
            max_node_failures=self.config.max_node_failures,
            blacklist_window=self.config.blacklist_window,
        )
        self._job_ids = itertools.count(1)
        # Serializes the launch preamble (before_job hooks, auto-repair,
        # job-id allocation) and history appends when the dataflow
        # scheduler launches jobs from several unit threads at once.
        self._launch_lock = threading.Lock()
        self.history: list[JobResult] = []
        #: Hooks invoked with the JobConf before each launch (chaos nemeses,
        #: schedulers).  A hook that raises aborts the launch.
        self.before_job: list[Callable[[JobConf], None]] = []
        #: Repair passes triggered by ``auto_repair``, in order.
        self.repair_log: list[RepairReport] = []
        self._repair_epoch = self.dfs.blocks.failure_epoch

    @property
    def num_workers(self) -> int:
        return self.config.num_workers

    @property
    def node_health(self):
        """The tracker's per-node failure/blacklist state (read-mostly)."""
        return self._tracker.node_health

    def _maybe_auto_repair(self) -> None:
        if not self.config.auto_repair:
            return
        epoch = self.dfs.blocks.failure_epoch
        if epoch == self._repair_epoch:
            return
        self._repair_epoch = epoch
        self.repair_log.append(self.dfs.health_monitor().repair())

    def run_job(
        self,
        conf: JobConf,
        *,
        parent_span=None,
        span_attrs: dict | None = None,
    ) -> JobResult:
        """Run one job to completion; raises JobFailedError on permanent failure.

        ``parent_span`` pins the JOB span's parent explicitly — required
        when the caller runs in a scheduler unit thread, where the ambient
        (contextvar) parent of the opening thread is not inherited.
        ``span_attrs`` adds attributes (the scheduler stamps its
        ready→launch wait here).
        """
        with self._launch_lock:
            for hook in list(self.before_job):
                hook(conf)
            self._maybe_auto_repair()
            job_id = JobId(next(self._job_ids))
        tracer = resolve_tracer(
            conf.telemetry if conf.telemetry is not None else self.config.telemetry
        )
        attrs = {"job": str(job_id)}
        if span_attrs:
            attrs.update(span_attrs)
        start = time.perf_counter()
        if not tracer.enabled:
            result = self._tracker.run_job(conf, job_id)
        else:
            with tracer.span(
                conf.name, SpanKind.JOB, attrs=attrs, parent=parent_span
            ) as job_span:
                result = self._tracker.run_job(
                    conf, job_id, tracer=tracer, job_span=job_span
                )
                job_span.set(
                    attempts_launched=result.attempts_launched,
                    attempts_failed=result.attempts_failed,
                )
            tracer.metrics.absorb_counters(result.counters)
        result.wall_seconds = time.perf_counter() - start
        with self._launch_lock:
            self.history.append(result)
        return result

    def jobs_run(self) -> int:
        return len(self.history)

    def total_launch_overhead(self) -> float:
        """Simulated seconds spent launching jobs across the whole history."""
        return self.config.job_launch_overhead * len(self.history)

    def shutdown(self) -> None:
        self._tracker.shutdown()
        self._executor.shutdown()

    def __enter__(self) -> "MapReduceRuntime":
        return self

    def __exit__(self, *exc) -> None:
        self.shutdown()


__all__ = ["MapReduceRuntime", "RuntimeConfig", "JobFailedError"]
