"""From-scratch MapReduce engine (the paper's Hadoop substrate).

Implements the full programming model the inversion pipeline targets: mappers
and reducers with contexts, a hash-partitioned sorted shuffle with combiner
support, a JobTracker with retry and speculative execution, fault injection,
Hadoop-style counters, and multi-job pipelines with master-side phases.
"""

from .counters import Counters
from .history import HistoryReport, JobSummary
from .faults import (
    FailAlways,
    FailNever,
    FailOnce,
    FailRandomly,
    FaultPolicy,
    InjectedTaskFailure,
)
from .job import (
    FnMapper,
    FnReducer,
    JobConf,
    Mapper,
    Reducer,
    TaskContext,
    default_partitioner,
    splits_for_workers,
)
from .master import JobFailedError, JobTracker
from .pipeline import MasterPhase, Pipeline, PipelineRecord
from .runtime import MapReduceRuntime, RuntimeConfig
from .types import (
    InputSplit,
    JobId,
    JobResult,
    TaskAttemptId,
    TaskId,
    TaskKind,
    TaskState,
    TaskTrace,
)

__all__ = [
    "Counters",
    "HistoryReport",
    "JobSummary",
    "FailAlways",
    "FailNever",
    "FailOnce",
    "FailRandomly",
    "FaultPolicy",
    "FnMapper",
    "FnReducer",
    "InjectedTaskFailure",
    "InputSplit",
    "JobConf",
    "JobFailedError",
    "JobId",
    "JobResult",
    "JobTracker",
    "Mapper",
    "MapReduceRuntime",
    "MasterPhase",
    "Pipeline",
    "PipelineRecord",
    "Reducer",
    "RuntimeConfig",
    "TaskAttemptId",
    "TaskContext",
    "TaskId",
    "TaskKind",
    "TaskState",
    "TaskTrace",
    "default_partitioner",
    "splits_for_workers",
]
