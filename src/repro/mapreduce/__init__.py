"""From-scratch MapReduce engine (the paper's Hadoop substrate).

Implements the full programming model the inversion pipeline targets: mappers
and reducers with contexts, a hash-partitioned sorted shuffle with combiner
support, a JobTracker with retry and speculative execution, fault injection,
Hadoop-style counters, and multi-job pipelines with master-side phases.
"""

from .counters import Counters

# HistoryReport/JobSummary moved to repro.telemetry.history; import from the
# new home directly (the .history shim warns) but keep re-exporting them here.
from ..telemetry.history import HistoryReport, JobSummary
from .backends import (
    ExecutionBackend,
    ProcessPoolBackend,
    SerialExecutor,
    TaskSerializationError,
    TaskTimeoutError,
    ThreadPoolBackend,
    WorkerCrashError,
    available_backends,
    make_executor,
    register_backend,
)
from .faults import (
    ComposedFaults,
    DelayAttempt,
    FailAlways,
    FailNever,
    FailOnNode,
    FailOnce,
    FailRandomly,
    FaultPolicy,
    InjectedTaskFailure,
    ScriptedFault,
)
from .job import (
    FnMapper,
    FnReducer,
    JobConf,
    Mapper,
    Reducer,
    TaskContext,
    TaskFactory,
    default_partitioner,
    splits_for_workers,
)
from .master import AttemptFailure, JobFailedError, JobTracker, NodeHealth
from .pipeline import MasterPhase, Pipeline, PipelineRecord
from .retry import RetryPolicy
from .runtime import MapReduceRuntime, RuntimeConfig
from .scheduler import (
    DataflowScheduler,
    SchedulerReport,
    SchedulerStallError,
    UnitSpec,
)
from .types import (
    InputSplit,
    JobId,
    JobResult,
    TaskAttemptId,
    TaskId,
    TaskKind,
    TaskState,
    TaskTrace,
)

__all__ = [
    "AttemptFailure",
    "ComposedFaults",
    "Counters",
    "DataflowScheduler",
    "DelayAttempt",
    "ExecutionBackend",
    "HistoryReport",
    "JobSummary",
    "FailAlways",
    "FailNever",
    "FailOnNode",
    "FailOnce",
    "FailRandomly",
    "FaultPolicy",
    "FnMapper",
    "FnReducer",
    "InjectedTaskFailure",
    "InputSplit",
    "JobConf",
    "JobFailedError",
    "JobId",
    "JobResult",
    "JobTracker",
    "Mapper",
    "MapReduceRuntime",
    "MasterPhase",
    "NodeHealth",
    "Pipeline",
    "PipelineRecord",
    "ProcessPoolBackend",
    "Reducer",
    "RetryPolicy",
    "RuntimeConfig",
    "SchedulerReport",
    "SchedulerStallError",
    "ScriptedFault",
    "SerialExecutor",
    "UnitSpec",
    "TaskAttemptId",
    "TaskFactory",
    "TaskSerializationError",
    "TaskTimeoutError",
    "TaskContext",
    "TaskId",
    "TaskKind",
    "TaskState",
    "TaskTrace",
    "ThreadPoolBackend",
    "WorkerCrashError",
    "available_backends",
    "default_partitioner",
    "make_executor",
    "register_backend",
    "splits_for_workers",
]
