"""Deprecated alias — the history report moved to :mod:`repro.telemetry.history`.

Importing this module keeps working (``HistoryReport`` / ``JobSummary`` are
re-exported) but warns once; new code should import from
:mod:`repro.telemetry` (or use the top-level ``repro.HistoryReport``).
"""

from __future__ import annotations

import warnings

from ..telemetry.history import HistoryReport, JobSummary

warnings.warn(
    "repro.mapreduce.history moved to repro.telemetry.history; "
    "import HistoryReport/JobSummary from repro.telemetry (or repro) instead",
    DeprecationWarning,
    stacklevel=2,
)

__all__ = ["HistoryReport", "JobSummary"]
