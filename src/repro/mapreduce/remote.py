"""Out-of-process task execution: descriptors, worker DFS, write-back.

The processes backend cannot ship the master's traced closures — they
capture the live DFS, locks, and tracer.  Instead the master builds a
picklable :class:`RemoteTask` per attempt (conf + work item + a
pre-computed :class:`~repro.mapreduce.faults.ScriptedFault` directive + the
shared-memory :class:`~repro.dfs.shm.ShmManifest`), the worker executes it
against a :class:`WorkerDFS`, and a :class:`RemoteOutcome` flows back.

The data path is asymmetric by design:

* **Reads** never cross the pipe: the worker maps read-only views straight
  onto the exported segments (zero-copy ``frombuffer`` for matrices, PR 5's
  read path across the process boundary).  Worker-side reads are *logical*
  — accounted on the task's trace and counters exactly like any attempt —
  while the one *physical* read per file happened driver-side at export.
* **Writes** are buffered: staged files come back as a ``(path, segment)``
  payload (inline bytes when small), and the *driver* replays them through
  ``dfs.stage_bytes`` before the normal publish/discard commit decision —
  so the PR 7 crash-consistency ledger (staged == published + discarded)
  and the reconciliation report hold without any special cases.
"""

from __future__ import annotations

import pickle
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any

from ..dfs import formats
from ..dfs.iostats import IOStats
from ..dfs.namenode import normalize
from ..dfs.shm import (
    ShmManifest,
    SharedDFSView,
    attach_segment,
    close_segment,
    create_segment,
    new_segment_name,
)
from .backends import TaskSerializationError
from .faults import ScriptedFault
from .job import JobConf
from .types import TaskAttemptId, TaskKind

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..dfs.filesystem import DFS
    from .task import MapAttemptResult, ReduceAttemptResult

#: Staged payloads at or above this many bytes travel via a shared-memory
#: result segment instead of being pickled through the result pipe.
INLINE_PAYLOAD_LIMIT = 128 * 1024


@dataclass
class RemoteTask:
    """One picklable attempt descriptor shipped to a pool worker."""

    kind: TaskKind
    conf: JobConf
    #: The map split or the merged reduce partition.
    item: Any
    attempt_id: TaskAttemptId
    node: int
    #: Driver-computed fault directive (stateful policies never cross).
    fault: ScriptedFault
    manifest: ShmManifest
    #: Pre-assigned segment name for large write-back, so the driver can
    #: scrub it even when the worker is killed mid-attempt.
    result_segment: str = field(default_factory=new_segment_name)
    inline_limit: int = INLINE_PAYLOAD_LIMIT


@dataclass
class RemoteOutcome:
    """What a worker sends back for one successful attempt."""

    result: "MapAttemptResult | ReduceAttemptResult"
    #: ``(segment_name, [(staged_path, offset, length), ...])`` when the
    #: staged bytes travelled via shared memory.
    staged_segment: tuple[str, list[tuple[str, int, int]]] | None = None
    #: Small staged payloads, pickled inline: ``staged_path -> bytes``.
    inline_staged: dict[str, bytes] = field(default_factory=dict)
    #: Direct (non-commit) writes, replayed verbatim by the driver.
    direct_writes: list[tuple[str, bytes]] = field(default_factory=list)


class _ZeroCopyMatrixReader:
    """The worker-side stand-in for the decoded-block cache: serves
    ``read_matrix`` as a read-only ``frombuffer`` view onto the shared
    segment — no decode copy, no pickle, no physical read."""

    def read_through(self, dfs: "WorkerDFS", path: str):
        buf = dfs.view.read_buffer(path)
        return formats.decode_matrix(buf), len(buf)


class WorkerDFS:
    """The DFS surface a task context sees inside a pool worker.

    Reads delegate to the :class:`~repro.dfs.shm.SharedDFSView`; writes are
    buffered for driver-side replay (staged writes keyed by their staging
    path, direct writes in order).  A task may read back its own buffered
    writes — matching the read-your-writes behaviour of the shared DFS.
    ``stats`` is a private :class:`~repro.dfs.iostats.IOStats` that absorbs
    incidental bookkeeping calls and is discarded with the worker: physical
    I/O accounting belongs to the driver, which already recorded the export
    reads and will record the write-back.
    """

    def __init__(self, view: SharedDFSView) -> None:
        self.view = view
        self.stats = IOStats()
        self.cache = _ZeroCopyMatrixReader()
        self.staged_data: dict[str, bytes] = {}
        self.direct_writes: list[tuple[str, bytes]] = []

    # -- reads ---------------------------------------------------------------

    def _own_write(self, path: str) -> bytes | None:
        norm = normalize(path)
        if norm in self.staged_data:
            return self.staged_data[norm]
        for written, data in reversed(self.direct_writes):
            if written == norm:
                return data
        return None

    def read_bytes(self, path: str, *, local: bool = False) -> bytes:
        own = self._own_write(path)
        if own is not None:
            return own
        return self.view.read_bytes(path)

    def read_text(self, path: str, *, local: bool = False) -> str:
        return self.read_bytes(path).decode("utf-8")

    def read_range(
        self, path: str, offset: int, length: int, *, local: bool = False
    ) -> bytes:
        own = self._own_write(path)
        if own is not None:
            return bytes(memoryview(own)[offset : offset + length])
        return self.view.read_range(path, offset, length)

    def exists(self, path: str) -> bool:
        if self._own_write(path) is not None:
            return True
        return self.view.exists(path)

    def is_dir(self, path: str) -> bool:
        return self.view.is_dir(path)

    def file_size(self, path: str) -> int:
        own = self._own_write(path)
        if own is not None:
            return len(own)
        return self.view.file_size(path)

    def list_dir(self, path: str) -> list[str]:
        return self.view.list_dir(path)

    # -- writes --------------------------------------------------------------

    def write_bytes(
        self,
        path: str,
        data: bytes,
        *,
        overwrite: bool = True,
        pending: bool = False,
    ) -> None:
        self.direct_writes.append((normalize(path), bytes(data)))

    def write_text(self, path: str, text: str, *, overwrite: bool = True) -> None:
        self.write_bytes(path, text.encode("utf-8"))

    def stage_bytes(self, path: str, data: bytes) -> None:
        self.staged_data[normalize(path)] = bytes(data)

    def mkdirs(self, path: str) -> None:  # noqa: B027 - namespace is virtual
        pass


def ensure_remote_runnable(conf: JobConf) -> None:
    """Fail fast — before any wave launches — when a job conf cannot cross
    the process boundary, with a pointer at the static gate."""
    probe = (
        conf.mapper_factory,
        conf.reducer_factory,
        conf.combiner_factory,
        conf.partitioner,
        conf.grouping_fn,
        conf.params,
        conf.splits,
    )
    try:
        pickle.dumps(probe)
    except Exception as exc:
        raise TaskSerializationError(
            f"job {conf.name!r} cannot run on a process backend: {exc!r}. "
            f"Factories, partitioners, and params must be picklable (no "
            f"lambdas or closures over live objects) — run `python -m repro "
            f"lint --procsafety` for the static diagnosis."
        ) from None


def execute_remote_task(
    task: RemoteTask, segments: dict[str, Any] | None = None
) -> RemoteOutcome:
    """Run one attempt inside a pool worker and package its outcome.

    ``segments`` is the worker's persistent name → ``SharedMemory`` cache;
    attachments outlive the task and are pruned to the current manifest so
    a long-lived worker does not accumulate dead mappings.
    """
    from .task import run_map_attempt, run_reduce_attempt

    view = SharedDFSView(task.manifest, segments=segments)
    wdfs = WorkerDFS(view)
    try:
        if task.kind is TaskKind.MAP:
            result = run_map_attempt(
                wdfs, task.conf, task.item, task.attempt_id, task.fault,
                node=task.node,
            )
        else:
            result = run_reduce_attempt(
                wdfs, task.conf, task.item, task.attempt_id, task.fault,
                node=task.node,
            )
    finally:
        if segments is not None:
            view.prune(task.manifest.segment_names())
        else:
            view.close()

    outcome = RemoteOutcome(result=result, direct_writes=wdfs.direct_writes)
    total = sum(len(data) for data in wdfs.staged_data.values())
    if wdfs.staged_data and total >= task.inline_limit:
        seg = create_segment(total, name=task.result_segment)
        entries: list[tuple[str, int, int]] = []
        offset = 0
        for path, data in wdfs.staged_data.items():
            seg.buf[offset : offset + len(data)] = data
            entries.append((path, offset, len(data)))
            offset += len(data)
        # Close our mapping but do not unlink: the driver adopts the
        # segment by name and unlinks it after landing the bytes.
        close_segment(seg)
        outcome.staged_segment = (task.result_segment, entries)
    else:
        outcome.inline_staged = dict(wdfs.staged_data)
    return outcome


def materialize_remote_outcome(dfs: "DFS", outcome: RemoteOutcome) -> None:
    """Driver-side landing: replay the attempt's write-back into the real
    DFS through the ordinary accounted paths.

    Staged files are re-staged in the attempt's original stage order, so
    the commit ledger and the master's publish/discard decision see exactly
    what an in-process attempt would have produced.
    """
    staged_bytes: dict[str, bytes] = dict(outcome.inline_staged)
    if outcome.staged_segment is not None:
        name, entries = outcome.staged_segment
        seg = attach_segment(name)
        try:
            for path, offset, length in entries:
                staged_bytes[path] = bytes(seg.buf[offset : offset + length])
        finally:
            close_segment(seg, unlink=True)
    for src, _final in outcome.result.staged:
        dfs.stage_bytes(src, staged_bytes[src])
    for path, data in outcome.direct_writes:
        dfs.write_bytes(path, data)


__all__ = [
    "INLINE_PAYLOAD_LIMIT",
    "RemoteOutcome",
    "RemoteTask",
    "WorkerDFS",
    "ensure_remote_runnable",
    "execute_remote_task",
    "materialize_remote_outcome",
]
