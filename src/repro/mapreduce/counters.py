"""Hierarchical job counters, mirroring Hadoop's counter groups.

Counters are the engine's public accounting surface: the framework maintains
the ``FileSystemCounters`` and ``TaskCounters`` groups, and user map/reduce
code can increment arbitrary custom counters through its context.
"""

from __future__ import annotations

import threading
from collections import defaultdict

# Framework counter groups / names (subset of Hadoop's, same semantics).
FILESYSTEM_GROUP = "FileSystemCounters"
TASK_GROUP = "TaskCounters"

BYTES_READ = "BYTES_READ"
BYTES_WRITTEN = "BYTES_WRITTEN"
MAP_INPUT_RECORDS = "MAP_INPUT_RECORDS"
MAP_OUTPUT_RECORDS = "MAP_OUTPUT_RECORDS"
COMBINE_INPUT_RECORDS = "COMBINE_INPUT_RECORDS"
COMBINE_OUTPUT_RECORDS = "COMBINE_OUTPUT_RECORDS"
REDUCE_INPUT_RECORDS = "REDUCE_INPUT_RECORDS"
REDUCE_INPUT_GROUPS = "REDUCE_INPUT_GROUPS"
REDUCE_OUTPUT_RECORDS = "REDUCE_OUTPUT_RECORDS"
SHUFFLE_BYTES = "SHUFFLE_BYTES"
LAUNCHED_MAPS = "LAUNCHED_MAPS"
LAUNCHED_REDUCES = "LAUNCHED_REDUCES"
FAILED_MAPS = "FAILED_MAPS"
FAILED_REDUCES = "FAILED_REDUCES"
TIMED_OUT_MAPS = "TIMED_OUT_MAPS"
TIMED_OUT_REDUCES = "TIMED_OUT_REDUCES"


class Counters:
    """Thread-safe two-level counter map: group -> name -> int."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._groups: dict[str, dict[str, int]] = defaultdict(  # guarded-by: _lock
            lambda: defaultdict(int)
        )

    def __getstate__(self) -> dict[str, dict[str, int]]:
        """Pickle as a plain nested dict: the lock (unpicklable) and the
        defaultdict factories are reconstructed on load, so counter objects
        can cross the process boundary in task results."""
        return self.as_dict()

    def __setstate__(self, state: dict[str, dict[str, int]]) -> None:
        self.__init__()
        with self._lock:
            for group, names in state.items():
                for name, value in names.items():
                    self._groups[group][name] = value

    def increment(self, group: str, name: str, amount: int = 1) -> None:
        with self._lock:
            self._groups[group][name] += amount

    def value(self, group: str, name: str) -> int:
        with self._lock:
            return self._groups.get(group, {}).get(name, 0)

    def group(self, group: str) -> dict[str, int]:
        with self._lock:
            return dict(self._groups.get(group, {}))

    def merge(self, other: "Counters") -> None:
        with other._lock:
            items = [
                (g, n, v)
                for g, names in other._groups.items()
                for n, v in names.items()
            ]
        for g, n, v in items:
            self.increment(g, n, v)

    def as_dict(self) -> dict[str, dict[str, int]]:
        with self._lock:
            return {g: dict(names) for g, names in self._groups.items()}

    def format(self) -> str:
        """Hadoop-style human-readable dump."""
        lines: list[str] = []
        for group in sorted(self.as_dict()):
            lines.append(group)
            for name, value in sorted(self.group(group).items()):
                lines.append(f"    {name}={value}")
        return "\n".join(lines)
