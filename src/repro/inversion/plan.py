"""The recursion plan: block tree, depths, and job counts.

Section 5 stresses that "the number of partitioning steps (i.e., the depth of
recursion) can be precomputed at the start", making the whole workflow a
*predefined* pipeline of MapReduce jobs.  This module is that precomputation:

* ``depth(n, nb) = ceil(log2(n / nb))`` — recursion depth ``d``;
* LU jobs = ``2^d - 1`` (each internal tree node contributes one job);
* total pipeline jobs = ``2^d + 1`` (partition + LU jobs + final inversion),
  which reproduces Table 3's "Number of Jobs" column exactly
  (M1: 9, M2: 17, M3: 17, M4: 33, M5: 9);
* intermediate-file count ``N(d) = 2^d + (m0/2)(2^d - 1)`` (Section 6.1).
"""

from __future__ import annotations

from dataclasses import dataclass, field


def depth(n: int, nb: int) -> int:
    """Recursion depth ``d = ceil(log2(n / nb))`` (0 when n <= nb).

    Computed in exact integer arithmetic: ``ceil(log2(n/nb)) ==
    ceil(log2(ceil(n/nb)))``, and the latter is a bit-length.
    """
    if n < 1 or nb < 1:
        raise ValueError("n and nb must be >= 1")
    if n <= nb:
        return 0
    blocks = -(-n // nb)  # ceil(n / nb)
    return (blocks - 1).bit_length()


def lu_job_count(n: int, nb: int) -> int:
    """MapReduce jobs in the LU stage: ``2^d - 1``."""
    return 2 ** depth(n, nb) - 1


def total_job_count(n: int, nb: int) -> int:
    """All pipeline jobs: one partition job + LU jobs + one inversion job.

    For n <= nb the matrix is inverted on the master; the pipeline still
    runs the final inversion job (column-parallel triangular inversion), and
    no partition job is needed, giving 1.
    """
    d = depth(n, nb)
    if d == 0:
        return 1
    return 2**d + 1


def intermediate_file_count(n: int, nb: int, m0: int) -> int:
    """Section 6.1's ``N(d) = 2^d + (m0/2)(2^d - 1)`` separate factor files.

    (Each of the ``2^d`` leaves stores one factor file; each of the
    ``2^d - 1`` internal nodes stores ``m0/2`` L2-or-U2 part files.)
    """
    d = depth(n, nb)
    return 2**d + (m0 // 2) * (2**d - 1)


def is_full_tree(n: int, nb: int) -> bool:
    """True when the recursion tree is *full* — every branch reaches depth
    ``d`` — so the closed-form job counts are exact.  Holds iff the smallest
    block one level above the leaves still exceeds nb."""
    d = depth(n, nb)
    if d == 0:
        return True
    return n // 2 ** (d - 1) > nb


def split_order(n: int) -> tuple[int, int]:
    """Split an order-n block into (n1, n2) halves; the paper halves at n/2
    (Figure 1).  For odd n the extra row goes to the top-left block so the
    recursion depth matches ``depth()``."""
    n1 = (n + 1) // 2
    return n1, n - n1


@dataclass
class PlanNode:
    """One node of the precomputed recursion tree.

    ``dir`` is the node's DFS directory (Figure 4: children live under
    ``dir/A1`` and ``dir/OUT``); ``row0`` is the node's first row in the
    *original* matrix (used by the partition job); ``kind`` says whether the
    node's input is a slice of the original matrix ("input") or a Schur
    complement produced by the parent's job ("schur").
    """

    dir: str
    n: int
    row0: int
    kind: str  # "input" | "schur"
    n1: int = 0
    n2: int = 0
    child1: "PlanNode | None" = None
    child2: "PlanNode | None" = None

    @property
    def is_leaf(self) -> bool:
        return self.child1 is None

    def leaves(self) -> list["PlanNode"]:
        if self.is_leaf:
            return [self]
        return self.child1.leaves() + self.child2.leaves()

    def internal_nodes(self) -> list["PlanNode"]:
        """Internal nodes in job execution order (child1 subtree, this node,
        child2 subtree) — the order the pipeline launches LU jobs."""
        if self.is_leaf:
            return []
        return (
            self.child1.internal_nodes() + [self] + self.child2.internal_nodes()
        )

    def input_nodes(self) -> list["PlanNode"]:
        out = [self] if self.kind == "input" else []
        if not self.is_leaf:
            out += self.child1.input_nodes() + self.child2.input_nodes()
        return out


def build_tree(n: int, nb: int, root_dir: str = "/Root") -> PlanNode:
    """Precompute the full recursion tree for an order-n inversion."""

    def build(dir_: str, size: int, row0: int, kind: str) -> PlanNode:
        node = PlanNode(dir=dir_, n=size, row0=row0, kind=kind)
        if size <= nb:
            return node
        n1, n2 = split_order(size)
        node.n1, node.n2 = n1, n2
        node.child1 = build(f"{dir_}/A1", n1, row0, kind)
        # The second child factors the Schur complement, which the parent's
        # job writes under dir/OUT (Figure 4).
        node.child2 = build(f"{dir_}/OUT", n2, row0 + n1, "schur")
        return node

    return build(root_dir.rstrip("/"), n, 0, "input")


@dataclass
class InversionPlan:
    """The precomputed pipeline for one matrix order."""

    n: int
    nb: int
    m0: int
    root: str = "/Root"
    tree: PlanNode = field(init=False)

    def __post_init__(self) -> None:
        self.tree = build_tree(self.n, self.nb, self.root)

    @property
    def depth(self) -> int:
        return depth(self.n, self.nb)

    @property
    def num_lu_jobs(self) -> int:
        return len(self.tree.internal_nodes())

    @property
    def num_jobs(self) -> int:
        """Total MapReduce jobs the pipeline will launch."""
        if self.tree.is_leaf:
            return 1
        return 1 + self.num_lu_jobs + 1

    def describe(self) -> str:
        """ASCII rendering of the recursion tree with block sizes, kinds,
        and the pipeline summary — a quick sanity view of what a
        configuration will do before running it."""
        lines = [
            f"InversionPlan: n={self.n}, nb={self.nb}, m0={self.m0}, "
            f"depth={self.depth}, jobs={self.num_jobs}"
        ]

        def walk(node: PlanNode, prefix: str, label: str) -> None:
            shape = "leaf (master LU)" if node.is_leaf else "internal (1 MR job)"
            lines.append(
                f"{prefix}{label}{node.dir}  [{node.n}x{node.n}, {node.kind}, {shape}]"
            )
            if not node.is_leaf:
                walk(node.child1, prefix + "  ", "A1: ")
                walk(node.child2, prefix + "  ", "B:  ")

        walk(self.tree, "", "")
        return "\n".join(lines)

    def job_schedule(self) -> list[str]:
        """The predefined pipeline, as job names in launch order (Figure 2):
        "the number of jobs in the pipeline and the data movement between
        the jobs can be precisely determined before the start of the
        computation".  The driver's executed job sequence matches this
        exactly (asserted in the tests)."""
        if self.tree.is_leaf:
            return ["invert-final"]
        return (
            ["partition"]
            + [f"lu:{node.dir}" for node in self.tree.internal_nodes()]
            + ["invert-final"]
        )

    def validate(self) -> None:
        """Internal consistency checks.

        The closed-form ``2^d - 1`` counts the *full* recursion tree; when n
        is "not a power of 2 and not divisible by nb" (the paper's caveat)
        some branches bottom out early, so the tree count is a lower bound of
        the closed form and exactly equal for aligned orders
        (:func:`is_full_tree`).
        """
        closed_form = lu_job_count(self.n, self.nb)
        assert self.num_lu_jobs <= closed_form, (self.num_lu_jobs, closed_form)
        if is_full_tree(self.n, self.nb):
            assert self.num_lu_jobs == closed_form
            assert self.num_jobs == total_job_count(self.n, self.nb)
        for leaf in self.tree.leaves():
            assert leaf.n <= self.nb
        sizes = sum(leaf.n for leaf in self.tree.leaves())
        assert sizes == self.n
