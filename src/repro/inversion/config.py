"""Configuration of one inversion run.

Collects the paper's tunables in one place: the bound value ``nb``
(Section 5), the cluster width ``m0``, and the three optimization toggles of
Section 6 — each independently switchable so the Figure 7 ablations can run
the unoptimized variants.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..dfs.cache import DEFAULT_BLOCK_CACHE_BYTES
from ..linalg.blockwrap import factor_grid
from ..mapreduce.retry import RetryPolicy
from ..telemetry.api import TraceConfig


@dataclass(frozen=True)
class InversionConfig:
    """Tunables of the MapReduce inversion pipeline.

    Attributes
    ----------
    nb:
        Bound value: blocks of order <= nb are LU-decomposed serially on the
        master node (paper uses 3200 on EC2; scaled-down runs use smaller).
    m0:
        Number of compute nodes = map tasks = reduce tasks per job.  Must be
        even (half the mappers compute L2', half U2 — Section 5.3) unless 2.
    separate_files:
        Section 6.1 — keep intermediate L/U pieces in separate files.  When
        off, the master serially combines each job's factor files (the
        unoptimized variant measured in Figure 7).
    block_wrap:
        Section 6.2 — block-wrap multiplication over the f1 x f2 grid.  When
        off, reducers use the naive row-slab scheme reading all of U2.
    transpose_u:
        Section 6.3 — store U factors transposed (row-major locality).
    pivot:
        Partial pivoting within diagonal blocks (the paper always pivots;
        off only for numerical experiments).
    root:
        DFS work directory (the paper's "Root").
    input_format:
        "binary" (default) or "text" — Table 3 reports both sizes; text
        reproduces the paper's a.txt ingestion.
    preflight:
        Statically validate the pipeline before running it (plan/dataflow
        linter + mapper/reducer purity checker, :mod:`repro.analysis`).
        The whole workflow is predefined (Section 5), so every defect the
        pre-flight catches would otherwise be a deep runtime failure.
        On by default; opt out for deliberately corrupted ablation runs.
    retry:
        :class:`~repro.mapreduce.retry.RetryPolicy` applied to every job the
        pipeline launches: exponential backoff between retry waves and an
        optional per-attempt deadline that turns hung tasks into timeouts.
        ``None`` (default) retries immediately with no deadline — the
        pre-hardening behaviour.
    max_attempts:
        Per-task attempt budget for every pipeline job (Hadoop's
        ``mapred.map.max.attempts``).
    telemetry:
        Explicit :class:`~repro.telemetry.TraceConfig` for the run.  ``None``
        (default) uses the ambient tracer — enabled inside
        ``with repro.observe():`` blocks, a zero-cost no-op otherwise.
    block_cache_bytes:
        Capacity of the worker-shared decoded-block cache
        (:class:`~repro.dfs.cache.BlockCache`) the driver attaches to the
        runtime's DFS.  On by default — hot factor files are immutable and
        re-read by every task in a wave.  Set 0 to disable; the Figure-7 /
        Table-1 experiment harnesses do so, keeping the paper's physical
        read-volume accounting byte-identical.
    output_commit:
        Two-phase crash-consistent output commit (on by default): task
        attempts and master phases stage their writes under ``/_tmp`` and
        publish atomically at commit, with per-step manifests under
        ``<root>/_commit/`` driving resume instead of existence probes.
        Off reverts to the direct-write, probe-based behaviour.
    executor:
        Execution backend for task attempts: ``"serial"`` (default),
        ``"threads"``, or ``"processes"`` — any name registered with
        :func:`~repro.mapreduce.register_backend`.  Only consulted when the
        driver builds its own runtime; an explicitly passed runtime or
        runtime config wins.
    num_workers:
        Worker-pool width for the driver-built runtime.  ``None`` (default)
        sizes the pool to ``m0`` — one slot per simulated compute node.
    schedule:
        Inter-step scheduling mode: ``"barrier"`` runs the pipeline as the
        paper's strictly barrier-synchronized step sequence; ``"dataflow"``
        launches every step the moment its DFS input blocks are published
        (:mod:`repro.mapreduce.scheduler`), overlapping steps whose block
        sets are disjoint.  ``None`` (default) defers to the runtime's
        :attr:`~repro.mapreduce.RuntimeConfig.schedule`.  Dataflow mode
        requires ``output_commit`` (readiness is keyed on sealed publishes).
    """

    nb: int = 64
    m0: int = 4
    separate_files: bool = True
    block_wrap: bool = True
    transpose_u: bool = True
    pivot: bool = True
    root: str = "/Root"
    input_format: str = "binary"
    preflight: bool = True
    retry: RetryPolicy | None = None
    max_attempts: int = 4
    telemetry: TraceConfig | None = None
    block_cache_bytes: int = DEFAULT_BLOCK_CACHE_BYTES
    output_commit: bool = True
    executor: str = "serial"
    num_workers: int | None = None
    schedule: str | None = None

    def __post_init__(self) -> None:
        if self.nb < 1:
            raise ValueError("nb must be >= 1")
        if self.block_cache_bytes < 0:
            raise ValueError("block_cache_bytes must be >= 0")
        if self.m0 < 2:
            raise ValueError("m0 must be >= 2 (half map L2', half map U2)")
        if self.m0 % 2:
            raise ValueError("m0 must be even (Section 5.3 splits mappers in half)")
        if self.input_format not in ("binary", "text"):
            raise ValueError(f"unknown input_format {self.input_format!r}")
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if self.num_workers is not None and self.num_workers < 1:
            raise ValueError("num_workers must be >= 1 (or None for m0)")
        if self.schedule not in (None, "barrier", "dataflow"):
            raise ValueError(
                f"unknown schedule {self.schedule!r} "
                "(use 'barrier', 'dataflow', or None)"
            )
        if self.schedule == "dataflow" and not self.output_commit:
            raise ValueError(
                "schedule='dataflow' requires output_commit: step readiness "
                "is keyed on sealed (published) blocks"
            )

    @property
    def mhalf(self) -> int:
        """Mappers assigned to the L side (= m0/2, Section 5.3)."""
        return self.m0 // 2

    @property
    def grid(self) -> tuple[int, int]:
        """The (f1, f2) block-wrap grid with m0 = f1 * f2 (Section 6.2)."""
        return factor_grid(self.m0)

    def with_overrides(self, **kwargs) -> "InversionConfig":
        """A copy with some fields replaced (ablation helper)."""
        from dataclasses import replace

        return replace(self, **kwargs)
