"""Deterministic DFS layout of every file the pipeline touches (Figure 4).

Given ``(n, nb, m0, optimization flags)`` the entire directory structure —
which mapper writes which file, which worker reads which files — is computed
up front, exactly as the paper precomputes its pipeline.  Because the layout
is a pure function of the configuration, mappers, reducers, and the master
all derive the same file map with no synchronization (Section 5.2: "no two
mappers write data into the same file ... synchronization on file writes is
never required").

Naming follows Figure 4:

* internal input-node directories hold ``A2/A.<i>.<jc>``, ``A3/A.<i>``,
  ``A4/A.<i>.<jc>`` written by the partition job;
* leaf input-node directories hold the block's rows as ``A.<i>``;
* every internal node's job writes ``L2/L.<j>``, ``U2/U.<j>`` and the Schur
  complement ``OUT/A.<j1>.<j2>``;
* factors of a decomposed block live at ``<dir>/OUT/{l.bin, u.bin|ut.bin,
  p.bin}`` — written by the master for leaves, and by the combining step for
  internal nodes when the separate-files optimization is disabled.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..linalg.blockwrap import contiguous_ranges
from .config import InversionConfig
from .plan import InversionPlan, PlanNode
from .regions import BlockRef, Region


def factor_paths(node_dir: str, *, transpose_u: bool) -> tuple[str, str, str]:
    """(L, U, perm) file paths for a decomposed block's combined factors."""
    u_name = "ut.bin" if transpose_u else "u.bin"
    return (
        f"{node_dir}/OUT/l.bin",
        f"{node_dir}/OUT/{u_name}",
        f"{node_dir}/OUT/p.bin",
    )


def _chunk_files(
    dir_prefix: str,
    row_ranges: list[tuple[int, int, int]],
    col_ranges: list[tuple[int, int, int]] | None,
    region_rows: int,
    region_cols: int,
    *,
    transposed: bool = False,
    stem: str = "A",
) -> Region:
    """Build a region tiled by ``<stem>.<i>[.<jc>]`` chunk files.

    ``row_ranges`` / ``col_ranges`` are ``(index, start, stop)`` in region
    coordinates; a ``None`` col_ranges means full-width single-index files.
    """
    refs: list[BlockRef] = []
    for i, r1, r2 in row_ranges:
        if r2 <= r1:
            continue
        if col_ranges is None:
            path = f"{dir_prefix}/{stem}.{i}"
            fr, fc = (r2 - r1, region_cols) if not transposed else (region_cols, r2 - r1)
            refs.append(
                BlockRef(
                    path=path,
                    r1=r1,
                    c1=0,
                    rows=r2 - r1,
                    cols=region_cols,
                    file_rows=fr,
                    file_cols=fc,
                    transposed=transposed,
                )
            )
            continue
        for jc, c1, c2 in col_ranges:
            if c2 <= c1:
                continue
            path = f"{dir_prefix}/{stem}.{i}.{jc}"
            fr, fc = (r2 - r1, c2 - c1) if not transposed else (c2 - c1, r2 - r1)
            refs.append(
                BlockRef(
                    path=path,
                    r1=r1,
                    c1=c1,
                    rows=r2 - r1,
                    cols=c2 - c1,
                    file_rows=fr,
                    file_cols=fc,
                    transposed=transposed,
                )
            )
    return Region(region_rows, region_cols, tuple(refs))


@dataclass
class NodeLayout:
    """Everything one plan node's tasks need to locate their data."""

    node: PlanNode
    # Inputs of this node's LU job (internal nodes only).
    a2: Region | None = None
    a3: Region | None = None
    a4: Region | None = None
    # Where this node's full matrix can be read (leaves; schur internals keep
    # it for sub-slicing).
    matrix: Region | None = None
    # Outputs of this node's LU job (internal nodes only).
    l2: Region | None = None
    u2: Region | None = None
    out: Region | None = None
    # Combined/leaf factor files.
    l_path: str = ""
    u_path: str = ""
    p_path: str = ""


class Layout:
    """Layout of the whole pipeline, indexed by node directory."""

    def __init__(self, plan: InversionPlan, config: InversionConfig, total_n: int) -> None:
        self.plan = plan
        self.config = config
        self.total_n = total_n
        self.by_dir: dict[str, NodeLayout] = {}
        self._build(plan.tree, source=None)

    # -- chunk helpers --------------------------------------------------------

    def mapper_row_ranges(self) -> list[tuple[int, int]]:
        """Global row share of each partition mapper (Section 5.2: worker j
        reads rows n*j/m0 .. n*(j+1)/m0)."""
        return contiguous_ranges(self.total_n, self.config.m0)

    def _intersect_mappers(self, row0: int, rows: int) -> list[tuple[int, int, int]]:
        """Partition-mapper chunks intersected with global rows
        ``[row0, row0+rows)``, returned as node-local ``(mapper, start, stop)``."""
        out: list[tuple[int, int, int]] = []
        for i, (g1, g2) in enumerate(self.mapper_row_ranges()):
            o1, o2 = max(g1, row0), min(g2, row0 + rows)
            if o1 < o2:
                out.append((i, o1 - row0, o2 - row0))
        return out

    @staticmethod
    def _indexed(ranges: list[tuple[int, int]]) -> list[tuple[int, int, int]]:
        return [(i, a, b) for i, (a, b) in enumerate(ranges)]

    # -- construction ----------------------------------------------------------

    def _build(self, node: PlanNode, source: Region | None) -> None:
        cfg = self.config
        nl = NodeLayout(node=node)
        nl.l_path, nl.u_path, nl.p_path = factor_paths(
            node.dir, transpose_u=cfg.transpose_u
        )
        self.by_dir[node.dir] = nl

        if node.is_leaf:
            if node.kind == "input":
                nl.matrix = _chunk_files(
                    node.dir,
                    self._intersect_mappers(node.row0, node.n),
                    None,
                    node.n,
                    node.n,
                )
            else:
                nl.matrix = source
            return

        n1, n2 = node.n1, node.n2
        if node.kind == "input":
            # Materialized by the partition job (Algorithm 3).
            nl.a2 = _chunk_files(
                f"{node.dir}/A2",
                self._intersect_mappers(node.row0, n1),
                self._indexed(contiguous_ranges(n2, cfg.mhalf)),
                n1,
                n2,
            )
            nl.a3 = _chunk_files(
                f"{node.dir}/A3",
                self._intersect_mappers(node.row0 + n1, n2),
                None,
                n2,
                n1,
            )
            f1, f2 = cfg.grid
            nl.a4 = _chunk_files(
                f"{node.dir}/A4",
                self._intersect_mappers(node.row0 + n1, n2),
                self._indexed(contiguous_ranges(n2, f2)),
                n2,
                n2,
            )
        else:
            # Logical partitioning of the Schur complement (index-only).
            if source is None:
                raise ValueError(f"schur node {node.dir} has no source region")
            nl.matrix = source
            nl.a2 = source.sub(0, n1, n1, node.n)
            nl.a3 = source.sub(n1, node.n, 0, n1)
            nl.a4 = source.sub(n1, node.n, n1, node.n)

        # This node's job outputs.
        # L2' rows as written by the mappers (unpermuted; read_lower applies P2).
        nl.l2 = _chunk_files(
            f"{node.dir}/L2",
            [(j, a, b) for j, (a, b) in enumerate(contiguous_ranges(n2, cfg.mhalf))],
            None,
            n2,
            n1,
            stem="L",
        )
        # U2 is stored in column chunks; with the Section 6.3 optimization the
        # files hold the transposed chunk.
        u_refs: list[BlockRef] = []
        for j, (c1, c2) in enumerate(contiguous_ranges(n2, cfg.mhalf)):
            if c2 <= c1:
                continue
            fr, fc = (n1, c2 - c1) if not cfg.transpose_u else (c2 - c1, n1)
            u_refs.append(
                BlockRef(
                    path=f"{node.dir}/U2/U.{j}",
                    r1=0,
                    c1=c1,
                    rows=n1,
                    cols=c2 - c1,
                    file_rows=n1,
                    file_cols=c2 - c1,
                    transposed=cfg.transpose_u,
                )
            )
        nl.u2 = Region(n1, n2, tuple(u_refs))

        if cfg.block_wrap:
            f1, f2 = cfg.grid
            out_refs: list[BlockRef] = []
            for j1, (r1, r2) in enumerate(contiguous_ranges(n2, f1)):
                for j2, (c1, c2) in enumerate(contiguous_ranges(n2, f2)):
                    if r2 <= r1 or c2 <= c1:
                        continue
                    out_refs.append(
                        BlockRef(
                            path=f"{node.dir}/OUT/A.{j1}.{j2}",
                            r1=r1,
                            c1=c1,
                            rows=r2 - r1,
                            cols=c2 - c1,
                            file_rows=r2 - r1,
                            file_cols=c2 - c1,
                        )
                    )
            nl.out = Region(n2, n2, tuple(out_refs))
        else:
            nl.out = _chunk_files(
                f"{node.dir}/OUT",
                [
                    (j, a, b)
                    for j, (a, b) in enumerate(contiguous_ranges(n2, cfg.m0))
                ],
                None,
                n2,
                n2,
            )

        child1_source = None
        if node.kind == "schur":
            child1_source = nl.matrix.sub(0, n1, 0, n1)
        self._build(node.child1, child1_source)
        self._build(node.child2, nl.out)

    # -- accessors --------------------------------------------------------------

    def of(self, node: PlanNode) -> NodeLayout:
        return self.by_dir[node.dir]

    def inv_l_path(self, j: int) -> str:
        """Final job: mapper j's strided columns of L^-1."""
        return f"{self.plan.root}/INV/L.{j}"

    def inv_u_path(self, j: int) -> str:
        """Final job: mapper (mhalf + j)'s strided rows of U^-1."""
        return f"{self.plan.root}/INV/U.{j}"

    def final_path(self, p: int) -> str:
        """Final job: reducer p's block of U^-1 L^-1."""
        return f"{self.plan.root}/FINAL/A.{p}"

    @property
    def input_path(self) -> str:
        ext = "bin" if self.config.input_format == "binary" else "txt"
        return f"{self.plan.root}/a.{ext}"

    def map_input_path(self, j: int) -> str:
        """Section 5.1 control file carrying worker id j."""
        return f"{self.plan.root}/MapInput/A.{j}"
