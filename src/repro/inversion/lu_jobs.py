"""The pipeline's MapReduce jobs for partitioning and LU decomposition.

Two job types:

* **Partition job** (Algorithm 3) — map-only; mapper *j* reads its contiguous
  share of the input matrix's rows *once* and writes every piece of every
  recursion-level block (A2/A3/A4 of internal input nodes, the leaf A1
  blocks) that intersects those rows, each piece to its own file.  "The input
  matrix is read only once and the partitioned matrix is written only once"
  (Section 4.2).

* **LU job** (one per internal tree node; Figure 5) — the first ``m0/2``
  mappers each compute a row chunk of ``L2'`` from ``A3`` and ``U1``
  (``L2' U1 = A3``); the other half each compute a column chunk of ``U2``
  from ``A2``, ``L1``, and ``P1`` (``L1 U2 = P1 A2``).  Mappers emit the
  control pair ``(j, j)``; reducer *j* computes its block-wrap cell of the
  Schur complement ``B = A4 - L2' U2`` and writes it to ``OUT``.

Mapper/reducer factories close over the precomputed :class:`Layout`; a real
Hadoop deployment ships the same information through the job configuration
(the layout is a pure function of ``n``, ``nb``, ``m0``, and the flags).
"""

from __future__ import annotations

import numpy as np

from ..dfs import formats
from ..linalg import permutation
from ..linalg.blockwrap import contiguous_ranges
from ..linalg.triangular import blocked_forward_substitute
from ..mapreduce import (
    InputSplit,
    JobConf,
    Mapper,
    Reducer,
    TaskContext,
    TaskFactory,
)
from .factors import read_lower, read_perm, read_upper
from .layout import Layout
from .plan import PlanNode


def control_splits(layout: Layout) -> list[InputSplit]:
    """Section 5.1's input files: split *j* points at ``MapInput/A.<j>``,
    whose single integer tells the mapper which role to play."""
    return [
        InputSplit(index=j, payload=j, path=layout.map_input_path(j))
        for j in range(layout.config.m0)
    ]


def worker_id(ctx: TaskContext, split: InputSplit) -> int:
    """Resolve the worker index the way the paper's mappers do: by reading
    the control file (falling back to the split payload when no file is
    attached, e.g. in unit tests)."""
    if split.path is not None:
        return int(ctx.read_text(split.path).strip())
    return int(split.payload)


# -- partition job (Algorithm 3) ------------------------------------------------


class PartitionMapper(Mapper):
    """Mapper *j* of the partition job: reads global rows ``[g1, g2)`` of the
    input and writes each block piece intersecting them."""

    def __init__(self, layout: Layout) -> None:
        self.layout = layout

    def _read_my_rows(self, ctx: TaskContext, g1: int, g2: int) -> np.ndarray:
        cfg = self.layout.config
        if cfg.input_format == "binary":
            return ctx.read_rows(self.layout.input_path, g1, g2)
        # Text input has no row index; the mapper scans the file and keeps
        # its rows (Hadoop's text splits behave the same way at line level).
        full = formats.decode_matrix_text(ctx.read_text(self.layout.input_path))
        return full[g1:g2]

    def map(self, ctx: TaskContext, split: InputSplit) -> None:
        j = worker_id(ctx, split)
        g1, g2 = self.layout.mapper_row_ranges()[j]
        ctx.emit(j, j)
        if g2 <= g1:
            return
        rows = self._read_my_rows(ctx, g1, g2)
        n_total = self.layout.total_n

        for node in self.layout.plan.tree.input_nodes():
            col0 = node.row0  # diagonal blocks: column origin == row origin
            if node.is_leaf:
                o1, o2 = max(g1, node.row0), min(g2, node.row0 + node.n)
                if o1 < o2:
                    piece = rows[o1 - g1 : o2 - g1, col0 : col0 + node.n]
                    ctx.write_bytes(
                        f"{node.dir}/A.{j}", formats.encode_matrix(piece)
                    )
                continue
            n1, n2 = node.n1, node.n2
            # A2: top rows, right columns, column-chunked for the U2 mappers.
            o1, o2 = max(g1, node.row0), min(g2, node.row0 + n1)
            if o1 < o2:
                top = rows[o1 - g1 : o2 - g1]
                for jc, (c1, c2) in enumerate(
                    contiguous_ranges(n2, self.layout.config.mhalf)
                ):
                    if c2 <= c1:
                        continue
                    piece = top[:, col0 + n1 + c1 : col0 + n1 + c2]
                    ctx.write_bytes(
                        f"{node.dir}/A2/A.{j}.{jc}", formats.encode_matrix(piece)
                    )
            # A3 and A4: bottom rows.
            o1, o2 = max(g1, node.row0 + n1), min(g2, node.row0 + node.n)
            if o1 < o2:
                bottom = rows[o1 - g1 : o2 - g1]
                ctx.write_bytes(
                    f"{node.dir}/A3/A.{j}",
                    formats.encode_matrix(bottom[:, col0 : col0 + n1]),
                )
                f1, f2 = self.layout.config.grid
                for jc, (c1, c2) in enumerate(contiguous_ranges(n2, f2)):
                    if c2 <= c1:
                        continue
                    piece = bottom[:, col0 + n1 + c1 : col0 + n1 + c2]
                    ctx.write_bytes(
                        f"{node.dir}/A4/A.{j}.{jc}", formats.encode_matrix(piece)
                    )


def partition_job(layout: Layout) -> JobConf:
    """Map-only partition job over ``m0`` control-file splits."""
    return JobConf(
        name="partition",
        mapper_factory=TaskFactory(PartitionMapper, (layout,)),
        splits=control_splits(layout),
    )


# -- LU job (Figure 5) -----------------------------------------------------------


class LUJobMapper(Mapper):
    """Computes one chunk of ``L2'`` or ``U2`` for one internal node."""

    def __init__(self, layout: Layout, node: PlanNode) -> None:
        self.layout = layout
        self.node = node

    def map(self, ctx: TaskContext, split: InputSplit) -> None:
        j = worker_id(ctx, split)
        cfg = self.layout.config
        node = self.node
        nl = self.layout.of(node)
        n1, n2 = node.n1, node.n2
        mhalf = cfg.mhalf
        chunks = contiguous_ranges(n2, mhalf)

        if j < mhalf:
            # L2' rows: solve  X U1 = A3[chunk]  row-independently (Eq. 6).
            r1, r2 = chunks[j]
            if r2 > r1:
                u1 = read_upper(self.layout, node.child1, ctx)
                a3 = nl.a3.sub(r1, r2, 0, n1).read(ctx)
                x = blocked_forward_substitute(u1.T, a3.T).T
                ctx.report_flops((r2 - r1) * n1 * n1 / 2)
                ctx.write_bytes(
                    f"{node.dir}/L2/L.{j}", formats.encode_matrix(x)
                )
        else:
            # U2 columns: solve  L1 U2[chunk] = (P1 A2)[chunk]  (Eq. 6).
            jc = j - mhalf
            c1, c2 = chunks[jc]
            if c2 > c1:
                l1 = read_lower(self.layout, node.child1, ctx)
                p1 = read_perm(self.layout, node.child1, ctx)
                a2 = nl.a2.sub(0, n1, c1, c2).read(ctx)
                u2 = blocked_forward_substitute(
                    l1, permutation.apply_rows(p1, a2), unit_diagonal=True
                )
                ctx.report_flops((c2 - c1) * n1 * n1 / 2)
                stored = u2.T if cfg.transpose_u else u2
                ctx.write_bytes(
                    f"{node.dir}/U2/U.{jc}", formats.encode_matrix(stored)
                )
        ctx.emit(j, j)


class LUJobReducer(Reducer):
    """Reducer *j* computes its cell of the Schur complement
    ``B = A4 - L2' U2`` and writes it to the node's OUT directory."""

    def __init__(self, layout: Layout, node: PlanNode) -> None:
        self.layout = layout
        self.node = node

    def reduce(self, ctx: TaskContext, key, values) -> None:
        for _ in values:  # drain the control values
            pass
        p = int(key)
        cfg = self.layout.config
        node = self.node
        nl = self.layout.of(node)
        n1, n2 = node.n1, node.n2

        if cfg.block_wrap:
            f1, f2 = cfg.grid
            j1, j2 = divmod(p, f2)
            r1, r2 = contiguous_ranges(n2, f1)[j1]
            c1, c2 = contiguous_ranges(n2, f2)[j2]
            if r2 <= r1 or c2 <= c1:
                return
            l2 = nl.l2.sub(r1, r2, 0, n1).read(ctx)
            u2 = nl.u2.sub(0, n1, c1, c2).read(ctx)
            a4 = nl.a4.sub(r1, r2, c1, c2).read(ctx)
            b = a4 - l2 @ u2
            ctx.report_flops((r2 - r1) * (c2 - c1) * n1)
            ctx.write_bytes(
                f"{node.dir}/OUT/A.{j1}.{j2}", formats.encode_matrix(b)
            )
        else:
            # Naive row-slab scheme (block-wrap ablation): reducer p reads its
            # rows of L2'/A4 plus ALL of U2.
            r1, r2 = contiguous_ranges(n2, cfg.m0)[p]
            if r2 <= r1:
                return
            l2 = nl.l2.sub(r1, r2, 0, n1).read(ctx)
            u2 = nl.u2.read(ctx)
            a4 = nl.a4.sub(r1, r2, 0, n2).read(ctx)
            b = a4 - l2 @ u2
            ctx.report_flops((r2 - r1) * n2 * n1)
            ctx.write_bytes(f"{node.dir}/OUT/A.{p}", formats.encode_matrix(b))


def lu_job(layout: Layout, node: PlanNode) -> JobConf:
    """The MapReduce job decomposing one internal node (lines 7-9 of
    Algorithm 2): ``m0`` mappers, ``m0`` reducers, control-pair shuffle."""
    m0 = layout.config.m0
    return JobConf(
        name=f"lu:{node.dir}",
        mapper_factory=TaskFactory(LUJobMapper, (layout, node)),
        reducer_factory=TaskFactory(LUJobReducer, (layout, node)),
        splits=control_splits(layout),
        num_reduce_tasks=m0,
    )
