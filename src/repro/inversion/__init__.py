"""The paper's contribution: matrix inversion as a pipeline of MapReduce jobs.

Public surface:

* :func:`invert` / :class:`MatrixInverter` — end-to-end inversion;
* :class:`InversionConfig` — the paper's tunables (nb, m0, Section 6 toggles);
* :class:`InversionPlan` — the precomputed recursion tree and job counts;
* :class:`Layout` — the deterministic Figure 4 file layout.
"""

from .config import InversionConfig
from .driver import InversionResult, LUFactors, MatrixInverter, invert
from .layout import Layout
from .plan import (
    InversionPlan,
    PlanNode,
    depth,
    intermediate_file_count,
    lu_job_count,
    total_job_count,
)
from .regions import BlockRef, Region

__all__ = [
    "BlockRef",
    "InversionConfig",
    "InversionPlan",
    "InversionResult",
    "LUFactors",
    "Layout",
    "MatrixInverter",
    "PlanNode",
    "Region",
    "depth",
    "intermediate_file_count",
    "invert",
    "lu_job_count",
    "total_job_count",
]
