"""Recursive assembly of the distributed L, U, and P factors.

With the separate-files optimization (Section 6.1), a decomposed block's
factors are never combined on disk: the lower factor of an internal node is

    L = [[ L1,       0  ],
         [ P2 L2',   L3 ]]

with ``L1``/``L3`` recursively assembled from the children and ``L2'`` read
from the node's ``L2/L.<j>`` part files; the row permutation ``P2`` is applied
*as the data is read* ("L2 is constructed only as it is read from HDFS",
Section 5.3).  Analogously ``U = [[U1, U2], [0, U3]]`` and
``P = augment(P1, P2)``.

When the optimization is off, the master combines each internal node's
factors into ``<dir>/OUT/{l.bin, u.bin|ut.bin, p.bin}`` after its subtree
finishes; readers hit those files first, so the same functions serve both
modes (and leaves, whose factors the master writes in the same layout).
"""

from __future__ import annotations

import numpy as np

from ..dfs import formats
from ..linalg import permutation
from ..linalg.lu import LUResult
from .layout import Layout, NodeLayout
from .plan import PlanNode
from .regions import MatrixReader


class FactorReader(MatrixReader):
    """Protocol extension: factor assembly also needs existence checks and
    raw byte reads (for permutation files)."""

    def exists(self, path: str) -> bool: ...

    def read_bytes(self, path: str) -> bytes: ...


def perm_to_bytes(perm: np.ndarray) -> bytes:
    return np.ascontiguousarray(perm, dtype=np.int64).tobytes()


def perm_from_bytes(data: bytes) -> np.ndarray:
    return np.frombuffer(data, dtype=np.int64).copy()


def write_leaf_factors(
    writer,
    layout_node: NodeLayout,
    lu: LUResult,
    *,
    transpose_u: bool,
) -> None:
    """Persist a master-decomposed block's factors (leaf layout).

    ``writer`` needs ``write_bytes(path, data)``; the unit-diagonal L is
    stored explicitly, U is stored transposed when the Section 6.3
    optimization is on.
    """
    lower = lu.lower()
    upper = lu.upper()
    writer.write_bytes(layout_node.l_path, formats.encode_matrix(lower))
    stored_u = upper.T if transpose_u else upper
    writer.write_bytes(layout_node.u_path, formats.encode_matrix(stored_u))
    writer.write_bytes(layout_node.p_path, perm_to_bytes(lu.perm))


def read_lower(layout: Layout, node: PlanNode, reader) -> np.ndarray:
    """Assemble the full lower factor of ``node`` (unit diagonal explicit)."""
    nl = layout.of(node)
    if reader.exists(nl.l_path):
        # Via the reader's matrix method (not raw bytes) so a decoded-block
        # cache on the DFS serves repeated factor reads from memory.
        return reader.read_matrix(nl.l_path)
    if node.is_leaf:
        raise FileNotFoundError(f"leaf factors missing: {nl.l_path}")
    n1 = node.n1
    lower = np.zeros((node.n, node.n))
    lower[:n1, :n1] = read_lower(layout, node.child1, reader)
    l2 = nl.l2.read(reader)
    p2 = read_perm(layout, node.child2, reader)
    lower[n1:, :n1] = permutation.apply_rows(p2, l2)
    lower[n1:, n1:] = read_lower(layout, node.child2, reader)
    return lower


def read_upper(layout: Layout, node: PlanNode, reader) -> np.ndarray:
    """Assemble the full upper factor of ``node``."""
    nl = layout.of(node)
    if reader.exists(nl.u_path):
        stored = reader.read_matrix(nl.u_path)
        return stored.T if layout.config.transpose_u else stored
    if node.is_leaf:
        raise FileNotFoundError(f"leaf factors missing: {nl.u_path}")
    n1 = node.n1
    upper = np.zeros((node.n, node.n))
    upper[:n1, :n1] = read_upper(layout, node.child1, reader)
    upper[:n1, n1:] = nl.u2.read(reader)
    upper[n1:, n1:] = read_upper(layout, node.child2, reader)
    return upper


def read_perm(layout: Layout, node: PlanNode, reader) -> np.ndarray:
    """Assemble the full pivot permutation of ``node`` (compact array S)."""
    nl = layout.of(node)
    if reader.exists(nl.p_path):
        return perm_from_bytes(reader.read_bytes(nl.p_path))
    if node.is_leaf:
        raise FileNotFoundError(f"leaf factors missing: {nl.p_path}")
    return permutation.augment(
        read_perm(layout, node.child1, reader),
        read_perm(layout, node.child2, reader),
    )


def combine_factors(layout: Layout, node: PlanNode, reader, writer) -> int:
    """The *unoptimized* Section 6.1 path: serially combine an internal
    node's factor pieces into single files on the master.

    Returns the number of bytes written (the combine's serial I/O).
    """
    nl = layout.of(node)
    lower = read_lower(layout, node, reader)
    upper = read_upper(layout, node, reader)
    perm = read_perm(layout, node, reader)
    l_data = formats.encode_matrix(lower)
    stored_u = upper.T if layout.config.transpose_u else upper
    u_data = formats.encode_matrix(stored_u)
    p_data = perm_to_bytes(perm)
    writer.write_bytes(nl.l_path, l_data)
    writer.write_bytes(nl.u_path, u_data)
    writer.write_bytes(nl.p_path, p_data)
    return len(l_data) + len(u_data) + len(p_data)
