"""The final MapReduce job: triangular inversion and the product
``A^-1 = U^-1 L^-1 P`` (Sections 4.3 and 5.4).

Map phase: the first ``m0/2`` mappers each compute a set of *columns* of
``L^-1`` (Equation 4 — columns are independent); the rest compute *rows* of
``U^-1`` via the transposed-lower kernel.  With block wrap enabled, each
mapper owns a strided (grid) set of indices so load is balanced — early
columns of ``L^-1`` are much more expensive than late ones, and Section 5.4's
interleaving ("Mapper0 computes columns 0, 4, 8, 12...") equalizes the work.

Reduce phase: reducer ``p = j1 * f2 + j2`` multiplies its strided rows of
``U^-1`` with its strided columns of ``L^-1`` (grid-block wrap), producing one
block of ``C = U^-1 L^-1``.  The driver places each block at
``A^-1[rows, S[cols]]`` — the column permutation of Section 4.3.
"""

from __future__ import annotations

import numpy as np

from ..dfs import formats
from ..linalg.blockwrap import contiguous_ranges, strided_indices
from ..linalg.triangular import invert_lower_columns, invert_upper_rows
from ..mapreduce import (
    InputSplit,
    JobConf,
    Mapper,
    Reducer,
    TaskContext,
    TaskFactory,
)
from .factors import read_lower, read_upper
from .layout import Layout
from .lu_jobs import control_splits, worker_id


def _l_mapper_columns(layout: Layout, j: int, n: int) -> np.ndarray:
    """Columns of L^-1 owned by L-side mapper ``j``."""
    cfg = layout.config
    if cfg.block_wrap:
        return strided_indices(n, cfg.mhalf, j)
    c1, c2 = contiguous_ranges(n, cfg.mhalf)[j]
    return np.arange(c1, c2, dtype=np.int64)


def _u_mapper_rows(layout: Layout, i: int, n: int) -> np.ndarray:
    """Rows of U^-1 owned by U-side mapper ``i`` (0-based within the U half)."""
    cfg = layout.config
    uhalf = cfg.m0 - cfg.mhalf
    if cfg.block_wrap:
        return strided_indices(n, uhalf, i)
    r1, r2 = contiguous_ranges(n, uhalf)[i]
    return np.arange(r1, r2, dtype=np.int64)


class InvertMapper(Mapper):
    """Computes one mapper's share of ``L^-1`` columns or ``U^-1`` rows."""

    def __init__(self, layout: Layout) -> None:
        self.layout = layout

    def map(self, ctx: TaskContext, split: InputSplit) -> None:
        j = worker_id(ctx, split)
        layout = self.layout
        cfg = layout.config
        tree = layout.plan.tree
        n = tree.n

        if j < cfg.mhalf:
            cols = _l_mapper_columns(layout, j, n)
            lower = read_lower(layout, tree, ctx)
            x = invert_lower_columns(lower, cols)  # n x k
            # Column c of L^-1 costs ~ (n - c)^2 / 2 multiplications (Eq. 4).
            ctx.report_flops(float(np.sum((n - cols) ** 2)) / 2.0)
            ctx.write_bytes(layout.inv_l_path(j), formats.encode_matrix(x))
        else:
            i = j - cfg.mhalf
            rows = _u_mapper_rows(layout, i, n)
            upper = read_upper(layout, tree, ctx)
            x = invert_upper_rows(upper, rows)  # k x n
            # Row r of U^-1 is column r of (U^T)^-1: ~ (n - r)^2 / 2 mults.
            ctx.report_flops(float(np.sum((n - rows) ** 2)) / 2.0)
            ctx.write_bytes(layout.inv_u_path(i), formats.encode_matrix(x))
        ctx.emit(j, j)


def _gather_rows(
    ctx: TaskContext, layout: Layout, rows: np.ndarray, n: int
) -> np.ndarray:
    """Assemble the requested full-length rows of ``U^-1`` from the strided
    (or contiguous) mapper output files."""
    cfg = layout.config
    uhalf = cfg.m0 - cfg.mhalf
    out = np.empty((rows.size, n))
    if cfg.block_wrap:
        for i in sorted({int(r) % uhalf for r in rows}):
            data = ctx.read_matrix(layout.inv_u_path(i))
            mask = rows % uhalf == i
            out[mask] = data[rows[mask] // uhalf]
    else:
        ranges = contiguous_ranges(n, uhalf)
        for i, (r1, r2) in enumerate(ranges):
            sel = (rows >= r1) & (rows < r2)
            if not np.any(sel):
                continue
            data = ctx.read_matrix(layout.inv_u_path(i))
            out[sel] = data[rows[sel] - r1]
    return out


def _gather_cols(
    ctx: TaskContext, layout: Layout, cols: np.ndarray, n: int
) -> np.ndarray:
    """Assemble the requested full-length columns of ``L^-1``."""
    cfg = layout.config
    out = np.empty((n, cols.size))
    if cfg.block_wrap:
        for j in sorted({int(c) % cfg.mhalf for c in cols}):
            data = ctx.read_matrix(layout.inv_l_path(j))
            mask = cols % cfg.mhalf == j
            out[:, mask] = data[:, cols[mask] // cfg.mhalf]
    else:
        ranges = contiguous_ranges(n, cfg.mhalf)
        for j, (c1, c2) in enumerate(ranges):
            sel = (cols >= c1) & (cols < c2)
            if not np.any(sel):
                continue
            data = ctx.read_matrix(layout.inv_l_path(j))
            out[:, sel] = data[:, cols[sel] - c1]
    return out


def reducer_indices(layout: Layout, p: int, n: int) -> tuple[np.ndarray, np.ndarray]:
    """(rows of U^-1, cols of L^-1) owned by final-job reducer ``p`` — shared
    with the driver, which uses the same function to place blocks."""
    cfg = layout.config
    if cfg.block_wrap:
        f1, f2 = cfg.grid
        j1, j2 = divmod(p, f2)
        return strided_indices(n, f1, j1), strided_indices(n, f2, j2)
    r1, r2 = contiguous_ranges(n, cfg.m0)[p]
    return np.arange(r1, r2, dtype=np.int64), np.arange(n, dtype=np.int64)


class InvertReducer(Reducer):
    """Reducer p: one grid block of ``C = U^-1 L^-1``."""

    def __init__(self, layout: Layout) -> None:
        self.layout = layout

    def reduce(self, ctx: TaskContext, key, values) -> None:
        for _ in values:
            pass
        p = int(key)
        layout = self.layout
        n = layout.plan.tree.n
        rows, cols = reducer_indices(layout, p, n)
        if rows.size == 0 or cols.size == 0:
            return
        u_rows = _gather_rows(ctx, layout, rows, n)
        l_cols = _gather_cols(ctx, layout, cols, n)
        block = u_rows @ l_cols
        ctx.report_flops(float(rows.size) * cols.size * n)
        ctx.write_bytes(layout.final_path(p), formats.encode_matrix(block))


def read_final_inverse(layout: Layout, reader) -> np.ndarray:
    """Assemble ``A^-1`` from the final job's block files, applying the pivot
    column permutation (used by the driver and by the verification job's
    mappers — both read the same reducer outputs)."""
    from .factors import read_perm

    n = layout.plan.tree.n
    out = np.zeros((n, n))
    perm = read_perm(layout, layout.plan.tree, reader)
    for p in range(layout.config.m0):
        rows, cols = reducer_indices(layout, p, n)
        if rows.size == 0 or cols.size == 0:
            continue
        block = reader.read_matrix(layout.final_path(p))
        out[np.ix_(rows, perm[cols])] = block
    return out


def invert_job(layout: Layout) -> JobConf:
    """The final job: ``m0`` mappers invert the triangular factors, ``m0``
    reducers multiply them (Figure 2's last stage)."""
    m0 = layout.config.m0
    return JobConf(
        name="invert-final",
        mapper_factory=TaskFactory(InvertMapper, (layout,)),
        reducer_factory=TaskFactory(InvertReducer, (layout,)),
        splits=control_splits(layout),
        num_reduce_tasks=m0,
    )
