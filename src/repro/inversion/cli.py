"""``python -m repro invert`` / ``describe`` — the inversion subcommands."""

from __future__ import annotations

import argparse
from typing import Any


def cmd_invert(args: argparse.Namespace) -> int:
    from ..workloads import random_dense
    from .config import InversionConfig
    from .driver import MatrixInverter

    a = random_dense(args.n, seed=args.seed)
    config = InversionConfig(
        nb=args.nb,
        m0=args.m0,
        executor=args.executor,
        num_workers=args.num_workers,
        schedule=args.scheduler,
    )
    inverter = MatrixInverter(config=config)
    result = inverter.invert(a)
    print(f"order {args.n}, nb={args.nb}, m0={args.m0}, "
          f"executor={args.executor}, scheduler={args.scheduler}")
    print(f"jobs: {result.num_jobs}  (depth {result.plan.depth})")
    print(f"driver residual:      {result.residual(a):.3e}")
    if args.verify:
        print(f"distributed residual: {inverter.distributed_residual(result):.3e}")
    print(f"DFS read {result.io.bytes_read / 1e6:.1f} MB, "
          f"written {result.io.bytes_written / 1e6:.1f} MB")
    inverter.close()
    return 0


def configure_invert(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--n", type=int, default=256)
    parser.add_argument("--nb", type=int, default=64)
    parser.add_argument("--m0", type=int, default=4)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--executor", choices=("serial", "threads", "processes"),
                        default="serial",
                        help="task execution backend (default: serial)")
    parser.add_argument("--num-workers", type=int, default=None,
                        help="worker-pool width (default: m0)")
    parser.add_argument("--scheduler", choices=("barrier", "dataflow"),
                        default="barrier",
                        help="inter-job scheduling mode (default: barrier; "
                        "dataflow launches steps on block availability)")
    parser.add_argument("--verify", action="store_true",
                        help="also run the distributed verification job")


def cmd_describe(args: argparse.Namespace) -> int:
    from .plan import InversionPlan

    plan = InversionPlan(n=args.n, nb=args.nb, m0=args.m0)
    plan.validate()
    print(plan.describe())
    print("\njob schedule:")
    for name in plan.job_schedule():
        print(f"  {name}")
    return 0


def configure_describe(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--n", type=int, required=True)
    parser.add_argument("--nb", type=int, default=3200)
    parser.add_argument("--m0", type=int, default=4)


def register_commands(registry: Any) -> None:
    """Hook for the ``python -m repro`` subcommand registry."""
    registry.add(
        "invert",
        cmd_invert,
        help="invert a random matrix end-to-end",
        configure=configure_invert,
    )
    registry.add(
        "describe",
        cmd_describe,
        help="show the pipeline plan for an (n, nb) configuration",
        configure=configure_describe,
    )


__all__ = ["cmd_describe", "cmd_invert", "register_commands"]
