"""End-to-end driver: ``A -> A^-1`` through the MapReduce pipeline.

Implements the workflow of Section 5 / Figure 2:

1. the master writes the input matrix and the ``MapInput/A.<j>`` control
   files to the DFS;
2. one map-only job partitions the input (Algorithm 3);
3. the recursion of Algorithm 2 runs as an in-order walk of the precomputed
   plan tree — leaves are LU-decomposed *on the master* (Algorithm 1),
   internal nodes run one MapReduce job each for ``L2'``/``U2``/Schur;
4. a final job inverts the triangular factors and multiplies them;
5. the master assembles ``A^-1`` from the reducers' block files, applying the
   pivot column permutation.

Everything the run did — job results, master phases, I/O, flops — is captured
in an :class:`InversionResult` so experiments can replay it on the simulated
cluster.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..dfs import formats
from ..dfs.commit import STAGING_ROOT, CommitLog, CommitScope
from ..dfs.filesystem import DFS
from ..dfs.fsck import FsckReport, fsck
from ..dfs.iostats import IOSnapshot
from ..linalg import verify
from ..linalg.lu import lu_decompose, lu_flop_count
from ..mapreduce import MapReduceRuntime, Pipeline, PipelineRecord, RuntimeConfig
from ..mapreduce.faults import FaultPolicy
from ..telemetry.api import resolve_tracer
from ..telemetry.spans import SpanKind
from .config import InversionConfig
from .factors import (
    combine_factors,
    read_lower,
    read_perm,
    read_upper,
    write_leaf_factors,
)
from .invert_job import invert_job, read_final_inverse, reducer_indices
from .layout import Layout
from .lu_jobs import lu_job, partition_job
from .plan import InversionPlan, PlanNode


class MasterIO:
    """DFS adapter for master-side phases with byte accounting.

    Satisfies the same reader/writer protocol as a task context, so the
    recursive factor assembly and Region reads work unchanged on the master.
    """

    def __init__(self, dfs: DFS) -> None:
        self.dfs = dfs
        self.bytes_read = 0
        self.bytes_written = 0
        self._scope: CommitScope | None = None

    # -- two-phase commit scoping (driven by Pipeline.master_phase) ----------

    def begin_phase(self, scope: CommitScope) -> None:
        """Route subsequent writes into the phase's staging scope."""
        self._scope = scope

    def end_phase(self) -> None:
        self._scope = None

    def take_io(self) -> tuple[int, int]:
        """Return and reset the accumulated (read, written) byte counts."""
        r, w = self.bytes_read, self.bytes_written
        self.bytes_read = 0
        self.bytes_written = 0
        return r, w

    def read_bytes(self, path: str) -> bytes:
        data = self.dfs.read_bytes(path)
        self.bytes_read += len(data)
        return data

    def write_bytes(self, path: str, data: bytes) -> None:
        if self._scope is not None:
            self._scope.stage_bytes(path, data)
        else:
            self.dfs.write_bytes(path, data)
        self.bytes_written += len(data)

    def read_matrix(self, path: str) -> np.ndarray:
        """Decoded-matrix read with the same cache semantics as
        :meth:`~repro.mapreduce.job.TaskContext.read_matrix`: logical bytes
        are accounted to the master either way, physical DFS traffic only on
        a miss."""
        cache = self.dfs.cache
        if cache is None:
            return formats.decode_matrix(self.read_bytes(path))
        m, nbytes = cache.read_through(self.dfs, path)
        self.dfs.stats.record_cache_request(nbytes)
        self.bytes_read += nbytes
        return m

    def read_rows(self, path: str, r1: int, r2: int) -> np.ndarray:
        m = formats.read_rows(self.dfs, path, r1, r2)
        self.bytes_read += m.nbytes
        return m

    def exists(self, path: str) -> bool:
        return self.dfs.exists(path)


@dataclass
class InversionResult:
    """Outcome of one pipeline run."""

    inverse: np.ndarray
    plan: InversionPlan
    layout: Layout
    record: PipelineRecord
    config: InversionConfig
    io: IOSnapshot = field(default_factory=IOSnapshot)
    #: Achieved schedule of a dataflow-mode run
    #: (:class:`~repro.mapreduce.scheduler.SchedulerReport`); ``None`` for
    #: barrier mode.
    scheduler_report: object | None = None

    @property
    def num_jobs(self) -> int:
        """MapReduce jobs launched (Table 3's "Number of Jobs")."""
        return self.record.num_jobs

    def residual(self, a: np.ndarray) -> float:
        """Section 7.2's ``max |I - A A^-1|``."""
        return verify.identity_residual(a, self.inverse)

    def total_flops(self) -> float:
        task_flops = sum(t.flops for t in self.record.all_traces())
        master_flops = sum(p.flops for p in self.record.master_phases)
        return task_flops + master_flops


@dataclass
class LUFactors:
    """Assembled distributed LU factorization: ``P A = L U``."""

    lower: np.ndarray
    upper: np.ndarray
    perm: np.ndarray
    plan: InversionPlan
    record: PipelineRecord


class MatrixInverter:
    """Public API: invert (or LU-decompose) matrices on a MapReduce runtime.

    Parameters
    ----------
    config:
        Pipeline tunables (:class:`InversionConfig`).  Defaults match the
        paper's setup scaled down (nb=64, m0=4, all optimizations on).
    runtime:
        An existing :class:`MapReduceRuntime` to run on; when omitted a
        fresh runtime with its own DFS is created (and shut down by
        ``close``), sized and backed per ``config.num_workers`` /
        ``config.executor``.
    fault_policy:
        Optional fault injection (only used when the runtime is created here).
    """

    def __init__(
        self,
        config: InversionConfig | None = None,
        runtime: MapReduceRuntime | None = None,
        runtime_config: RuntimeConfig | None = None,
        fault_policy: FaultPolicy | None = None,
    ) -> None:
        self.config = config or InversionConfig()
        self._owns_runtime = runtime is None
        if runtime is None and runtime_config is None:
            # Derive the runtime from the inversion config: one worker slot
            # per compute node unless num_workers overrides it.
            runtime_config = RuntimeConfig(
                num_workers=self.config.num_workers or self.config.m0,
                executor=self.config.executor,
            )
        self.runtime = runtime or MapReduceRuntime(
            config=runtime_config, fault_policy=fault_policy
        )

    # -- lifecycle ------------------------------------------------------------

    def close(self) -> None:
        if self._owns_runtime:
            self.runtime.shutdown()

    def __enter__(self) -> "MatrixInverter":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- plumbing ---------------------------------------------------------------

    def _plan_and_layout(self, n: int) -> tuple[InversionPlan, Layout]:
        """Precompute the pipeline for order ``n`` — statically validated by
        the :mod:`repro.analysis` pre-flight unless ``config.preflight`` is
        off (raises :class:`~repro.analysis.PreflightError` on defects)."""
        cfg = self.config
        if cfg.preflight:
            from ..analysis import preflight_check

            model = preflight_check(n, cfg)
            model.plan.validate()
            return model.plan, model.layout
        plan = InversionPlan(n=n, nb=cfg.nb, m0=cfg.m0, root=cfg.root)
        plan.validate()
        return plan, Layout(plan, cfg, n)

    def _job_validators(self):
        """Pre-run checks applied to every job the pipeline launches."""
        if not self.config.preflight:
            return []
        from ..analysis import PreflightError, analyze_job, has_errors

        def check_purity(conf) -> None:
            findings = analyze_job(conf)
            if has_errors(findings):
                raise PreflightError(findings)

        return [check_purity]

    def _commit_log(self) -> CommitLog | None:
        """The run's manifest log (``None`` with the protocol off)."""
        if not self.config.output_commit:
            return None
        return CommitLog(self.runtime.dfs, self.config.root)

    def _pipeline(self) -> Pipeline:
        return Pipeline(
            self.runtime,
            validators=self._job_validators(),
            retry_policy=self.config.retry,
            max_attempts=self.config.max_attempts,
            telemetry=self.config.telemetry,
            commit_log=self._commit_log(),
            output_commit=self.config.output_commit,
        )

    def _configure_cache(self) -> None:
        """Attach/detach the decoded-block cache per ``config.block_cache_bytes``.

        Detaching when 0 (rather than leaving a previously attached cache)
        guarantees runs configured for paper-faithful accounting — the
        Figure-7 / Table-1 harnesses — never serve a byte from memory.
        """
        dfs = self.runtime.dfs
        if self.config.block_cache_bytes:
            dfs.attach_cache(self.config.block_cache_bytes)
        else:
            dfs.detach_cache()

    def _prepare(
        self, a: np.ndarray, *, resume: bool = False
    ) -> tuple[Layout, Pipeline, MasterIO]:
        a = np.asarray(a, dtype=np.float64)
        self._configure_cache()
        if a.ndim != 2 or a.shape[0] != a.shape[1]:
            raise ValueError(f"matrix must be square, got shape {a.shape}")
        n = a.shape[0]
        cfg = self.config
        plan, layout = self._plan_and_layout(n)
        dfs = self.runtime.dfs
        if resume and cfg.output_commit:
            # Roll back any debris the crashed run left — orphaned staging,
            # unsealed files, broken manifests — before trusting DFS state.
            self._resume_fsck(dfs)
        if resume and dfs.exists(layout.input_path):
            # Resuming a previous run of the same matrix: keep the DFS state
            # and skip the ingestion phase entirely.
            if cfg.input_format == "binary":
                stored = formats.matrix_shape(dfs, layout.input_path)
                if stored != (n, n):
                    raise ValueError(
                        f"cannot resume: stored input is {stored}, new input "
                        f"is {(n, n)}"
                    )
            return layout, self._pipeline(), MasterIO(dfs)
        if dfs.exists(cfg.root):
            dfs.delete(cfg.root, recursive=True)
        # A from-scratch run must not inherit staging debris (or stale
        # manifests — those lived under root and are gone with it).
        dfs.discard_staging(STAGING_ROOT)

        master = MasterIO(dfs)
        pipeline = self._pipeline()

        # Step 1 (Section 5.1): master writes the input and control files.
        def write_inputs() -> None:
            if cfg.input_format == "binary":
                master.write_bytes(layout.input_path, formats.encode_matrix(a))
            else:
                master.write_bytes(
                    layout.input_path,
                    formats.encode_matrix_text(a).encode("utf-8"),
                )
            for j in range(cfg.m0):
                master.write_bytes(layout.map_input_path(j), str(j).encode())

        pipeline.master_phase("write-input", write_inputs, io=master)
        return layout, pipeline, master

    def _resume_fsck(self, dfs: DFS) -> FsckReport:
        """Repairing consistency check run before any resume decision."""
        tracer = resolve_tracer(self.config.telemetry)
        if not tracer.enabled:
            return fsck(dfs, root=self.config.root, repair=True)
        with tracer.span("resume-fsck", SpanKind.DFS_REPAIR) as span:
            report = fsck(dfs, root=self.config.root, repair=True)
            span.set(
                issues=len(report.issues),
                files_checked=report.files_checked,
                manifests_checked=report.manifests_checked,
            )
            return report

    def _node_complete(self, layout: Layout, node: PlanNode) -> bool:
        """True when a node's factors are already committed on the DFS.

        Because every intermediate lives in HDFS, the pipeline is naturally
        resumable after a *driver* failure: completed subtrees are detected
        and skipped (task-level failures are handled separately by the
        JobTracker's retries).  With the output-commit protocol on, the
        check reads the per-step manifests — a step counts as done only if
        its commit point was reached, so a crash between two files of a
        multi-file write can never masquerade as completion.  With the
        protocol off it falls back to the legacy existence probes.
        """
        log = self._commit_log()
        if log is not None:
            return self._node_committed(log, node)
        nl = layout.of(node)
        dfs = self.runtime.dfs
        if dfs.exists(nl.l_path):  # leaf factors or combined files
            return dfs.exists(nl.u_path) and dfs.exists(nl.p_path)
        if node.is_leaf:
            return False
        return (
            self._node_complete(layout, node.child1)
            and all(dfs.exists(p) for p in nl.l2.file_paths())
            and all(dfs.exists(p) for p in nl.u2.file_paths())
            and all(dfs.exists(p) for p in nl.out.file_paths())
            and self._node_complete(layout, node.child2)
        )

    def _node_committed(self, log: CommitLog, node: PlanNode) -> bool:
        """Manifest-based completion: every step of the subtree committed."""
        if node.is_leaf:
            return log.committed(f"phase:master-lu:{node.dir}")
        done = (
            self._node_committed(log, node.child1)
            and log.committed(f"job:lu:{node.dir}")
            and self._node_committed(log, node.child2)
        )
        if not self.config.separate_files:
            done = done and log.committed(f"phase:combine:{node.dir}")
        return done

    def _decompose(
        self, layout: Layout, pipeline: Pipeline, master: MasterIO, node: PlanNode,
        *, resume: bool = False,
    ) -> None:
        """Algorithm 2 as an in-order tree walk."""
        if resume and self._node_complete(layout, node):
            return
        if node.is_leaf:
            nl = layout.of(node)
            is_whole_input = node is layout.plan.tree

            def leaf_lu() -> None:
                if is_whole_input:
                    # Single-leaf plan (n <= nb): no partition job ran, so the
                    # master reads the input file directly.
                    if self.config.input_format == "binary":
                        block = master.read_matrix(layout.input_path)
                    else:
                        block = formats.decode_matrix_text(
                            master.read_bytes(layout.input_path).decode("utf-8")
                        )
                else:
                    block = nl.matrix.read(master)
                lu = lu_decompose(block, pivot=self.config.pivot)
                write_leaf_factors(
                    master, nl, lu, transpose_u=self.config.transpose_u
                )

            pipeline.master_phase(
                f"master-lu:{node.dir}",
                leaf_lu,
                flops=lu_flop_count(node.n),
                io=master,
            )
            return

        self._decompose(layout, pipeline, master, node.child1, resume=resume)
        nl = layout.of(node)
        log = self._commit_log()
        if log is not None:
            job_done = resume and log.committed(f"job:lu:{node.dir}")
        else:
            job_done = resume and all(
                self.runtime.dfs.exists(p)
                for region in (nl.l2, nl.u2, nl.out)
                for p in region.file_paths()
            )
        if not job_done:
            pipeline.run_job(lu_job(layout, node))
        self._decompose(layout, pipeline, master, node.child2, resume=resume)

        if not self.config.separate_files:
            # Section 6.1 ablation: serial combine on the master.
            def do_combine() -> None:
                combine_factors(layout, node, master, master)

            pipeline.master_phase(f"combine:{node.dir}", do_combine, io=master)

    def _assemble_inverse(
        self, layout: Layout, pipeline: Pipeline, master: MasterIO
    ) -> np.ndarray:
        """Collect the final job's blocks into ``A^-1`` (column permutation
        by the pivot array S, Section 4.3)."""
        n = layout.plan.tree.n
        out = np.zeros((n, n))

        def collect() -> None:
            out[:] = read_final_inverse(layout, master)

        pipeline.master_phase("collect-output", collect, io=master)
        return out

    # -- dataflow scheduling ---------------------------------------------------

    def _schedule_mode(self) -> str:
        """Resolved scheduling mode: config wins, runtime config is the
        fallback (``"barrier"`` unless someone opted in)."""
        return self.config.schedule or self.runtime.config.schedule

    def _dataflow_units(self, layout, pipeline, model, run_span, *, resume):
        """The pipeline's schedulable units, in plan order.

        Mirrors :meth:`invert`'s barrier step sequence exactly — one unit
        per master phase, one per MapReduce job (map+reduce grouped:
        intra-job dataflow is the JobTracker's business) — with each unit's
        ``needs`` taken from the static model: its reads minus its own
        writes.  ``write-input`` (already run by ``_prepare``) and
        ``collect-output`` (runs after the schedule drains) are excluded.
        """
        from ..mapreduce.scheduler import UnitSpec

        cfg = self.config
        dfs = self.runtime.dfs
        log = self._commit_log()
        nodes_by_dir: dict[str, PlanNode] = {}

        def index(node: PlanNode) -> None:
            nodes_by_dir[node.dir] = node
            if not node.is_leaf:
                index(node.child1)
                index(node.child2)

        index(layout.plan.tree)

        # Group the model's steps into units: master steps stand alone, a
        # job's map+reduce phases merge.
        steps = [
            s
            for s in model.steps
            if s.name not in ("write-input", "collect-output")
        ]
        grouped: list[tuple[str, str, list]] = []
        i = 0
        while i < len(steps):
            step = steps[i]
            if step.job is None:
                grouped.append(("phase", step.name, [step]))
                i += 1
                continue
            j = i
            while j < len(steps) and steps[j].job == step.job:
                j += 1
            grouped.append(("job", step.job, steps[i:j]))
            i = j

        def job_conf_factory(job_name: str):
            if job_name == "partition":
                return lambda: partition_job(layout)
            if job_name == "invert-final":
                return lambda: invert_job(layout)
            if job_name.startswith("lu:"):
                node = nodes_by_dir[job_name[len("lu:"):]]
                return lambda: lu_job(layout, node)
            raise KeyError(f"unknown job unit {job_name!r}")

        def phase_body(phase_name: str):
            """The master-phase work, as fn(MasterIO) -> None, plus flops."""
            if phase_name.startswith("master-lu:"):
                node = nodes_by_dir[phase_name[len("master-lu:"):]]
                nl = layout.of(node)
                is_whole_input = node is layout.plan.tree

                def leaf_lu(master: MasterIO) -> None:
                    if is_whole_input:
                        if cfg.input_format == "binary":
                            block = master.read_matrix(layout.input_path)
                        else:
                            block = formats.decode_matrix_text(
                                master.read_bytes(layout.input_path).decode(
                                    "utf-8"
                                )
                            )
                    else:
                        block = nl.matrix.read(master)
                    lu = lu_decompose(block, pivot=cfg.pivot)
                    write_leaf_factors(
                        master, nl, lu, transpose_u=cfg.transpose_u
                    )

                return leaf_lu, lu_flop_count(node.n)
            if phase_name.startswith("combine:"):
                node = nodes_by_dir[phase_name[len("combine:"):]]

                def do_combine(master: MasterIO) -> None:
                    combine_factors(layout, node, master, master)

                return do_combine, 0.0
            raise KeyError(f"unknown phase unit {phase_name!r}")

        units: list[UnitSpec] = []
        for kind, name, members in grouped:
            needs = frozenset(
                set().union(*(s.reads for s in members))
                - set().union(*(s.writes for s in members))
            )
            if kind == "job":
                # invert-final always re-runs on resume, matching barrier
                # semantics (its reducers' outputs feed collect-output).
                done = (
                    resume
                    and name != "invert-final"
                    and log is not None
                    and log.committed(f"job:{name}")
                )
                make_conf = job_conf_factory(name)

                def run_job_unit(wait: float, make_conf=make_conf) -> tuple:
                    conf = make_conf()
                    result = pipeline.execute_job(
                        conf,
                        parent_span=run_span,
                        span_attrs={
                            "schedule": "dataflow",
                            "sched_wait_seconds": round(wait, 6),
                        },
                    )
                    return (conf.name, conf.output_commit, result)

                def commit_job_unit(payload: tuple) -> None:
                    conf_name, output_commit, result = payload
                    pipeline.commit_job(
                        conf_name, result, output_commit=output_commit
                    )

                units.append(
                    UnitSpec(
                        name=name,
                        kind="job",
                        needs=needs,
                        run=run_job_unit,
                        commit=commit_job_unit,
                        done=done,
                    )
                )
            else:
                body, flops = phase_body(name)
                done = (
                    resume
                    and log is not None
                    and log.committed(f"phase:{name}")
                )

                def run_phase_unit(
                    wait: float, name=name, body=body, flops=flops
                ) -> tuple:
                    # Per-unit MasterIO: phase scoping and byte counters are
                    # mutable per-phase state, unshareable across threads.
                    master = MasterIO(dfs)
                    _, phase, published = pipeline.execute_phase(
                        name,
                        lambda: body(master),
                        flops=flops,
                        io=master,
                        parent_span=run_span,
                        span_attrs={
                            "schedule": "dataflow",
                            "sched_wait_seconds": round(wait, 6),
                        },
                    )
                    return (phase, published)

                def commit_phase_unit(payload: tuple, name=name) -> None:
                    phase, published = payload
                    pipeline.commit_phase(name, phase, published)

                units.append(
                    UnitSpec(
                        name=name,
                        kind="phase",
                        needs=needs,
                        run=run_phase_unit,
                        commit=commit_phase_unit,
                        done=done,
                    )
                )
        return units

    def _invert_dataflow(
        self, a: np.ndarray, *, resume: bool = False
    ) -> InversionResult:
        """Dataflow-mode :meth:`invert`: same steps, block-driven launches."""
        from ..analysis.model import build_model
        from ..mapreduce.scheduler import DataflowScheduler

        cfg = self.config
        if not cfg.output_commit:
            raise ValueError(
                "dataflow scheduling requires output_commit: step readiness "
                "is keyed on sealed (published) blocks"
            )
        a = np.asarray(a, dtype=np.float64)
        before = self.runtime.dfs.stats.snapshot()
        tracer = resolve_tracer(cfg.telemetry)
        with tracer.span("invert", SpanKind.RUN) as run_span:
            if tracer.enabled:
                run_span.set(
                    n=a.shape[0], nb=cfg.nb, m0=cfg.m0, resume=resume,
                    schedule="dataflow",
                )
            layout, pipeline, master = self._prepare(a, resume=resume)
            model = build_model(a.shape[0], cfg)
            units = self._dataflow_units(
                layout,
                pipeline,
                model,
                run_span if tracer.enabled else None,
                resume=resume,
            )
            scheduler = DataflowScheduler(
                dfs=self.runtime.dfs,
                units=units,
                model=model,
                telemetry=cfg.telemetry,
            )
            report = scheduler.run()
            inverse = self._assemble_inverse(layout, pipeline, master)

        io = self.runtime.dfs.stats.snapshot() - before
        if tracer.enabled:
            tracer.metrics.absorb_iostats(io)
        return InversionResult(
            inverse=inverse,
            plan=layout.plan,
            layout=layout,
            record=pipeline.record,
            config=self.config,
            io=io,
            scheduler_report=report,
        )

    # -- public operations ---------------------------------------------------------

    def invert(self, a: np.ndarray, *, resume: bool = False) -> InversionResult:
        """Invert ``a`` through the full MapReduce pipeline.

        ``resume=True`` continues a previous run of the same matrix on this
        runtime's DFS (e.g. after a driver crash): completed stages are
        detected by their persisted outputs and skipped.

        With ``schedule="dataflow"`` (on the inversion or runtime config)
        the same steps run under the block-availability scheduler
        (:mod:`repro.mapreduce.scheduler`) instead of the paper's barrier
        sequence; results and DFS end-state are identical, completion order
        is not.
        """
        if self._schedule_mode() == "dataflow":
            return self._invert_dataflow(a, resume=resume)
        a = np.asarray(a, dtype=np.float64)
        before = self.runtime.dfs.stats.snapshot()
        tracer = resolve_tracer(self.config.telemetry)
        with tracer.span("invert", SpanKind.RUN) as run_span:
            if tracer.enabled:
                run_span.set(
                    n=a.shape[0], nb=self.config.nb, m0=self.config.m0,
                    resume=resume,
                )
            layout, pipeline, master = self._prepare(a, resume=resume)
            tree = layout.plan.tree

            log = self._commit_log()
            if log is not None:
                partition_done = (
                    resume
                    and not tree.is_leaf
                    and log.committed("job:partition")
                )
            else:
                partition_done = resume and not tree.is_leaf and all(
                    self.runtime.dfs.exists(p)
                    for node in tree.input_nodes()
                    if not node.is_leaf
                    for p in layout.of(node).a3.file_paths()
                ) and self.runtime.dfs.exists(layout.map_input_path(0))
            if not tree.is_leaf and not partition_done:
                pipeline.run_job(partition_job(layout))
            self._decompose(layout, pipeline, master, tree, resume=resume)
            pipeline.run_job(invert_job(layout))
            inverse = self._assemble_inverse(layout, pipeline, master)

        io = self.runtime.dfs.stats.snapshot() - before
        if tracer.enabled:
            tracer.metrics.absorb_iostats(io)
        return InversionResult(
            inverse=inverse,
            plan=layout.plan,
            layout=layout,
            record=pipeline.record,
            config=self.config,
            io=io,
        )

    def distributed_residual(self, result: InversionResult) -> float:
        """Section 7.2's check as a MapReduce job: ``max |I - A A^-1|``
        computed from the DFS state of a completed run (the input file and
        the final job's block files must still be present on this runtime)."""
        from .verify_job import verify_job

        job = self.runtime.run_job(verify_job(result.layout))
        (_, value), = job.reduce_outputs[0]
        result.record.steps.append(job)
        return float(value)

    def invert_path(self, path: str) -> InversionResult:
        """Invert a matrix that already lives on this runtime's DFS (binary
        format) — the Section 1 deployment story where "the input matrix to
        be inverted would be generated by a MapReduce job and stored in
        HDFS".  No driver-side ingestion: the file is linked into the work
        directory and the pipeline reads it where it lies.
        """
        dfs = self.runtime.dfs
        rows, cols = formats.matrix_shape(dfs, path)
        if rows != cols:
            raise ValueError(f"matrix at {path} is {rows}x{cols}, not square")
        cfg = self.config
        if cfg.input_format != "binary":
            raise ValueError("invert_path requires binary input_format")
        plan, layout = self._plan_and_layout(rows)
        self._configure_cache()
        if dfs.exists(cfg.root):
            dfs.delete(cfg.root, recursive=True)

        before = dfs.stats.snapshot()
        tracer = resolve_tracer(self.config.telemetry)
        with tracer.span("invert-path", SpanKind.RUN) as run_span:
            if tracer.enabled:
                run_span.set(n=rows, nb=cfg.nb, m0=cfg.m0, path=path)
            master = MasterIO(dfs)
            pipeline = self._pipeline()

            def link_inputs() -> None:
                # Copy the matrix into the work directory (HDFS has no
                # hardlinks; a rename would destroy the caller's file).
                master.write_bytes(layout.input_path, dfs.read_bytes(path))
                for j in range(cfg.m0):
                    master.write_bytes(layout.map_input_path(j), str(j).encode())

            pipeline.master_phase("link-input", link_inputs, io=master)

            tree = plan.tree
            if not tree.is_leaf:
                pipeline.run_job(partition_job(layout))
            self._decompose(layout, pipeline, master, tree)
            pipeline.run_job(invert_job(layout))
            inverse = self._assemble_inverse(layout, pipeline, master)
        io = dfs.stats.snapshot() - before
        if tracer.enabled:
            tracer.metrics.absorb_iostats(io)
        return InversionResult(
            inverse=inverse,
            plan=plan,
            layout=layout,
            record=pipeline.record,
            config=cfg,
            io=io,
        )

    def solve(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        """Solve ``A X = B`` end-to-end on the cluster: invert ``A`` through
        the pipeline, then compute ``A^-1 B`` as a distributed block-wrap
        multiplication (Section 1's linear-system application, with the
        product also done where the data lives)."""
        from ..systemml import MatrixOps, read_matrix, save_matrix

        a = np.asarray(a, dtype=np.float64)
        b = np.asarray(b, dtype=np.float64)
        one_d = b.ndim == 1
        if one_d:
            b = b[:, None]
        if b.shape[0] != a.shape[0]:
            raise ValueError(f"rhs has {b.shape[0]} rows, matrix is {a.shape[0]}")
        result = self.invert(a)
        ops = MatrixOps(self.runtime, m0=self.config.m0)
        h_inv = save_matrix(
            self.runtime.dfs, "/solve/Ainv", result.inverse, chunks=self.config.m0
        )
        h_b = save_matrix(self.runtime.dfs, "/solve/B", b, chunks=self.config.m0)
        h_x = ops.multiply(h_inv, h_b, "/solve/X")
        x = read_matrix(self.runtime.dfs, h_x)
        return x[:, 0] if one_d else x

    def lu(self, a: np.ndarray) -> LUFactors:
        """Run only the LU stage and assemble ``P A = L U``."""
        a = np.asarray(a, dtype=np.float64)
        tracer = resolve_tracer(self.config.telemetry)
        with tracer.span("lu", SpanKind.RUN) as run_span:
            if tracer.enabled:
                run_span.set(n=a.shape[0], nb=self.config.nb, m0=self.config.m0)
            layout, pipeline, master = self._prepare(a)
            tree = layout.plan.tree
            if not tree.is_leaf:
                pipeline.run_job(partition_job(layout))
            self._decompose(layout, pipeline, master, tree)
            lower = read_lower(layout, tree, master)
            upper = read_upper(layout, tree, master)
            perm = read_perm(layout, tree, master)
        return LUFactors(
            lower=lower,
            upper=upper,
            perm=perm,
            plan=layout.plan,
            record=pipeline.record,
        )


def invert(
    a: np.ndarray,
    config: InversionConfig | None = None,
    runtime: MapReduceRuntime | None = None,
) -> InversionResult:
    """One-call convenience: invert ``a`` on a fresh (or given) runtime."""
    inverter = MatrixInverter(config=config, runtime=runtime)
    try:
        return inverter.invert(a)
    finally:
        inverter.close()
