"""Logical matrix regions backed by DFS files.

The pipeline never materializes a submatrix unless a job writes it: Section
5.2 partitions the Schur complement ``B = A4 - L2' U2`` "instead of
materializing the data partitions ... we only record the indices of the
beginning and ending row/column of each partition".  A :class:`Region` is that
record: a logical ``rows x cols`` matrix whose content lives in one or more
stored block files, each contributing a rectangle.  ``sub()`` slices a region
without touching data — the master's <1 s "partitioning" of B — and
``read()`` assembles the content through a task context so every byte is
accounted to the reading task.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Protocol

import numpy as np


class MatrixReader(Protocol):
    """The subset of TaskContext a region needs (also satisfied by the
    master-side reader in the driver)."""

    def read_matrix(self, path: str) -> np.ndarray: ...

    def read_rows(self, path: str, r1: int, r2: int) -> np.ndarray: ...


@dataclass(frozen=True)
class BlockRef:
    """One stored file's contribution to a region.

    The file holds a ``file_rows x file_cols`` matrix (transposed on disk when
    ``transposed`` — Section 6.3 stores U factors transposed).  Region-local
    rectangle ``[r1, r1+rows) x [c1, c1+cols)`` maps to file rectangle
    ``[fr1, fr1+rows) x [fc1, fc1+cols)`` in logical (un-transposed)
    coordinates.
    """

    path: str
    r1: int
    c1: int
    rows: int
    cols: int
    fr1: int = 0
    fc1: int = 0
    file_rows: int = 0
    file_cols: int = 0
    transposed: bool = False

    def read_part(self, reader: MatrixReader) -> np.ndarray:
        """Fetch this ref's rectangle from its file.

        Whole-row spans are fetched with a range read (only the needed rows
        cross the wire); column sub-ranges read the file and slice, which is
        what a row-major store must do.
        """
        fr2 = self.fr1 + self.rows
        fc2 = self.fc1 + self.cols
        if self.transposed:
            # File stores the transpose: logical (row, col) = file (col, row).
            if self.fr1 == 0 and fr2 == self.file_rows and self.file_rows > 0:
                # Full logical rows == full file columns; range-read file rows.
                data = reader.read_rows(self.path, self.fc1, fc2)
                return data.T
            data = reader.read_matrix(self.path)
            return data.T[self.fr1 : fr2, self.fc1 : fc2]
        if self.fc1 == 0 and fc2 == self.file_cols and self.file_cols > 0:
            return reader.read_rows(self.path, self.fr1, fr2)
        data = reader.read_matrix(self.path)
        return data[self.fr1 : fr2, self.fc1 : fc2]


@dataclass(frozen=True)
class Region:
    """A logical matrix assembled from block refs (coordinates region-local)."""

    rows: int
    cols: int
    blocks: tuple[BlockRef, ...]

    def __post_init__(self) -> None:
        for b in self.blocks:
            if b.r1 < 0 or b.c1 < 0 or b.r1 + b.rows > self.rows or b.c1 + b.cols > self.cols:
                raise ValueError(
                    f"block {b.path} rectangle exceeds region {self.rows}x{self.cols}"
                )

    @staticmethod
    def single(path: str, rows: int, cols: int, *, transposed: bool = False) -> "Region":
        """A region backed by exactly one whole file."""
        return Region(
            rows,
            cols,
            (
                BlockRef(
                    path=path,
                    r1=0,
                    c1=0,
                    rows=rows,
                    cols=cols,
                    file_rows=rows,
                    file_cols=cols,
                    transposed=transposed,
                ),
            ),
        )

    def covered(self) -> bool:
        """True iff the blocks tile the region exactly (no gaps, no overlap)."""
        area = sum(b.rows * b.cols for b in self.blocks)
        if area != self.rows * self.cols:
            return False
        # Overlap check via sweep over block corners (block counts are small).
        rects = [(b.r1, b.c1, b.r1 + b.rows, b.c1 + b.cols) for b in self.blocks]
        for i, (r1, c1, r2, c2) in enumerate(rects):
            for rr1, cc1, rr2, cc2 in rects[i + 1 :]:
                if r1 < rr2 and rr1 < r2 and c1 < cc2 and cc1 < c2:
                    return False
        return True

    def sub(self, r1: int, r2: int, c1: int, c2: int) -> "Region":
        """Logical sub-region ``[r1, r2) x [c1, c2)`` — an index-only operation
        (the paper's master-side partitioning of B)."""
        if not (0 <= r1 <= r2 <= self.rows and 0 <= c1 <= c2 <= self.cols):
            raise ValueError(
                f"sub-range [{r1}:{r2}, {c1}:{c2}] outside region "
                f"{self.rows}x{self.cols}"
            )
        clipped: list[BlockRef] = []
        for b in self.blocks:
            br2, bc2 = b.r1 + b.rows, b.c1 + b.cols
            ir1, ir2 = max(b.r1, r1), min(br2, r2)
            ic1, ic2 = max(b.c1, c1), min(bc2, c2)
            if ir1 >= ir2 or ic1 >= ic2:
                continue
            clipped.append(
                replace(
                    b,
                    r1=ir1 - r1,
                    c1=ic1 - c1,
                    rows=ir2 - ir1,
                    cols=ic2 - ic1,
                    fr1=b.fr1 + (ir1 - b.r1),
                    fc1=b.fc1 + (ic1 - b.c1),
                )
            )
        return Region(r2 - r1, c2 - c1, tuple(clipped))

    def read(self, reader: MatrixReader) -> np.ndarray:
        """Assemble the region's content (raises if the tiling has gaps)."""
        if not self.covered():
            raise ValueError(
                f"region {self.rows}x{self.cols} is not fully covered by its blocks"
            )
        out = np.zeros((self.rows, self.cols))
        for b in self.blocks:
            out[b.r1 : b.r1 + b.rows, b.c1 : b.c1 + b.cols] = b.read_part(reader)
        return out

    def file_paths(self) -> list[str]:
        seen: dict[str, None] = {}
        for b in self.blocks:
            seen.setdefault(b.path, None)
        return list(seen)


def stack_regions_vertically(top: Region, bottom: Region) -> Region:
    """Concatenate two regions with equal column counts."""
    if top.cols != bottom.cols:
        raise ValueError(f"column mismatch: {top.cols} vs {bottom.cols}")
    shifted = tuple(replace(b, r1=b.r1 + top.rows) for b in bottom.blocks)
    return Region(top.rows + bottom.rows, top.cols, top.blocks + shifted)


def stack_regions_horizontally(left: Region, right: Region) -> Region:
    """Concatenate two regions with equal row counts."""
    if left.rows != right.rows:
        raise ValueError(f"row mismatch: {left.rows} vs {right.rows}")
    shifted = tuple(replace(b, c1=b.c1 + left.cols) for b in right.blocks)
    return Region(left.rows, left.cols + right.cols, left.blocks + shifted)
