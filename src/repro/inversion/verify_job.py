"""Distributed verification: Section 7.2's ``I_n - M M^-1`` as a MapReduce
job.

At paper scale the correctness check is itself a large computation — an
n x n product — so it runs the same way everything else does: mapper *j*
reads its contiguous row slab of the input matrix and the assembled inverse,
forms ``I[rows] - A[rows] @ A^-1``, and emits its local maximum absolute
element; a single reducer takes the global max.  The driver exposes this as
:meth:`MatrixInverter.distributed_residual`.
"""

from __future__ import annotations

import numpy as np

from ..linalg.blockwrap import contiguous_ranges
from ..mapreduce import (
    InputSplit,
    JobConf,
    Mapper,
    Reducer,
    TaskContext,
    TaskFactory,
)
from .invert_job import read_final_inverse
from .layout import Layout
from .lu_jobs import control_splits, worker_id


class VerifyMapper(Mapper):
    """Computes ``max |I[rows] - A[rows] A^-1|`` over one row slab."""

    def __init__(self, layout: Layout) -> None:
        self.layout = layout

    def map(self, ctx: TaskContext, split: InputSplit) -> None:
        j = worker_id(ctx, split)
        layout = self.layout
        n = layout.plan.tree.n
        r1, r2 = contiguous_ranges(n, layout.config.m0)[j]
        if r2 <= r1:
            ctx.emit("max", 0.0)
            return
        if layout.config.input_format == "binary":
            rows = ctx.read_rows(layout.input_path, r1, r2)
        else:
            from ..dfs import formats

            rows = formats.decode_matrix_text(ctx.read_text(layout.input_path))[r1:r2]
        inverse = read_final_inverse(layout, ctx)
        identity_rows = np.zeros((r2 - r1, n))
        identity_rows[np.arange(r2 - r1), np.arange(r1, r2)] = 1.0
        local_max = float(np.max(np.abs(identity_rows - rows @ inverse)))
        ctx.report_flops(float(r2 - r1) * n * n)
        ctx.emit("max", local_max)


class MaxReducer(Reducer):
    """Global maximum of the per-slab maxima."""

    def reduce(self, ctx: TaskContext, key, values) -> None:
        ctx.emit(key, max(values))


def verify_job(layout: Layout) -> JobConf:
    return JobConf(
        name="verify-identity",
        mapper_factory=TaskFactory(VerifyMapper, (layout,)),
        reducer_factory=MaxReducer,
        splits=control_splits(layout),
        num_reduce_tasks=1,
    )
