"""Common experiment machinery.

Every evaluation artifact follows the same recipe:

1. *execute* the real pipeline at a scaled-down order (the structure — job
   sequence, task DAG, per-task flops/bytes — is exact for the chosen
   ``n/nb`` and ``m0``);
2. *replay* the recorded run on a simulated EC2 cluster, lifting per-task
   work to the paper's order with :class:`~repro.cluster.ScaleFactors`
   (flops scale cubically, bytes quadratically);
3. print the same rows/series the paper reports.

Executed runs are memoized per (n, nb, m0, flags, seed) because the scaling
figures sweep node counts over the same matrix.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..cluster import ClusterSpec, EC2_MEDIUM, NodeSpec, ScaleFactors, simulate_record
from ..cluster.simulator import SimulationReport
from ..inversion import InversionConfig, InversionResult, MatrixInverter
from ..mapreduce import MapReduceRuntime, RuntimeConfig
from ..mapreduce.faults import FaultPolicy
from ..workloads.generators import random_dense


@dataclass(frozen=True)
class RunKey:
    n: int
    nb: int
    m0: int
    separate_files: bool
    block_wrap: bool
    transpose_u: bool
    seed: int


@dataclass
class ExperimentHarness:
    """Runs and caches pipeline executions for the experiment modules."""

    executor: str = "serial"
    num_workers: int = 4
    _cache: dict[RunKey, InversionResult] = field(default_factory=dict)

    def run(
        self,
        n: int,
        nb: int,
        m0: int,
        *,
        separate_files: bool = True,
        block_wrap: bool = True,
        transpose_u: bool = True,
        seed: int = 0,
        fault_policy: FaultPolicy | None = None,
        matrix: np.ndarray | None = None,
    ) -> InversionResult:
        """Execute (or fetch the cached) pipeline run."""
        key = RunKey(n, nb, m0, separate_files, block_wrap, transpose_u, seed)
        if fault_policy is None and matrix is None and key in self._cache:
            return self._cache[key]
        a = matrix if matrix is not None else random_dense(n, seed=seed)
        config = InversionConfig(
            nb=nb,
            m0=m0,
            separate_files=separate_files,
            block_wrap=block_wrap,
            transpose_u=transpose_u,
            # Paper-faithful physical read volumes (Figures 6-8, Tables 1-2):
            # every logical read must hit the DFS, never a memory cache.
            block_cache_bytes=0,
            # Commit manifests are protocol metadata the paper's byte
            # accounting knows nothing about; keep the write volumes pinned.
            output_commit=False,
            # The paper's runs are strictly barrier-synchronized (Section 5);
            # pin the mode so a dataflow-default runtime can never skew the
            # reproduced step sequence or timings.
            schedule="barrier",
        )
        runtime = MapReduceRuntime(
            config=RuntimeConfig(num_workers=self.num_workers, executor=self.executor),
            fault_policy=fault_policy,
        )
        try:
            inverter = MatrixInverter(config=config, runtime=runtime)
            result = inverter.invert(a)
        finally:
            runtime.shutdown()
        if fault_policy is None and matrix is None:
            self._cache[key] = result
        return result

    def replay(
        self,
        result: InversionResult,
        *,
        num_nodes: int,
        paper_n: int | None = None,
        node: NodeSpec = EC2_MEDIUM,
        job_launch_overhead: float = 22.0,
    ) -> SimulationReport:
        """Simulate the recorded run on an EC2-style cluster at paper scale."""
        executed_n = result.plan.n
        scale = (
            ScaleFactors.for_order(executed_n, paper_n)
            if paper_n is not None
            else ScaleFactors()
        )
        cluster = ClusterSpec(
            num_nodes=num_nodes,
            node=node,
            job_launch_overhead=job_launch_overhead,
        )
        return simulate_record(result.record, cluster, scale)
