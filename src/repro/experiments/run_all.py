"""Regenerate every table and figure in one run.

Usage:  python -m repro.experiments.run_all [--fast]

``--fast`` shrinks the sweeps (used by CI-style smoke runs); the default
settings match what EXPERIMENTS.md records.
"""

from __future__ import annotations

import sys
import time

from . import fig6, fig7, fig8, sec72, sec74, sec75, sec8_spark, table1, table2, table3
from .harness import ExperimentHarness


def main(fast: bool = False) -> None:
    harness = ExperimentHarness()
    started = time.perf_counter()

    sections: list[tuple[str, callable]] = [
        ("Table 1", lambda: table1.format_result(table1.run(n=256, nb=32, m0=8))),
        (
            "Table 2",
            lambda: table2.format_result(
                table2.run(n=256, nb=32, m0=8, harness=harness)
            ),
        ),
        (
            "Table 3",
            lambda: table3.format_result(
                table3.run(execute=not fast, scale=128, harness=harness)
            ),
        ),
        (
            "Figure 6",
            lambda: fig6.format_result(
                fig6.run(
                    node_counts=(2, 4, 8) if fast else (2, 4, 8, 16, 32, 64),
                    matrices=("M5",) if fast else ("M1", "M2", "M3"),
                    scale=128,
                    harness=harness,
                )
            ),
        ),
        (
            "Figure 7",
            lambda: fig7.format_result(
                fig7.run(
                    node_counts=(4, 8) if fast else (4, 8, 16, 32, 64),
                    scale=128,
                    harness=harness,
                )
            ),
        ),
        (
            "Figure 8",
            lambda: fig8.format_result(
                fig8.run(measure_traffic=not fast, harness=harness)
            ),
        ),
        (
            "Section 7.2",
            lambda: sec72.format_result(
                sec72.run(
                    matrices=("M5",) if fast else ("M1", "M2", "M3", "M5"),
                    scale=128,
                    harness=harness,
                )
            ),
        ),
        (
            "Section 7.4",
            lambda: sec74.format_result(
                sec74.run(
                    scale=128,
                    m0_large=8 if fast else 128,
                    m0_medium=4 if fast else 64,
                    harness=harness,
                )
            ),
        ),
        (
            "Section 8 (Spark)",
            lambda: sec8_spark.format_result(
                sec8_spark.run(n=96 if fast else 160, nb=24 if fast else 40, harness=harness)
            ),
        ),
        (
            "Section 7.5",
            lambda: sec75.format_result(
                sec75.run(scale=128, m0=4 if fast else 8, harness=harness)
            ),
        ),
    ]

    for name, render in sections:
        t0 = time.perf_counter()
        output = render()
        dt = time.perf_counter() - t0
        print(f"\n{'=' * 72}\n{output}\n[{name} regenerated in {dt:.1f} s]")

    print(f"\ntotal: {time.perf_counter() - started:.1f} s")


if __name__ == "__main__":
    main(fast="--fast" in sys.argv[1:])
