"""Figure 7 — effect of the Section 6 optimizations.

The paper measures, on matrix M5 over 4-64 nodes, the ratio of unoptimized to
optimized running time for (a) storing intermediate data in separate files
(combining on the master costs a constant serial time per job, so the ratio
grows as the parallel part shrinks — up to ~1.3x) and (b) block-wrap
multiplication (read I/O drops from (m0+1) n^2 to (f1+f2) n^2 per multiply,
so the gain also grows with the node count).

Reproduction: run the pipeline with each optimization disabled, replay both
runs on the simulated cluster at paper scale, and report the time ratios.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..cluster import EC2_MEDIUM
from ..workloads.suite import get
from .harness import ExperimentHarness
from .report import format_series

DEFAULT_NODE_COUNTS = (4, 8, 16, 32, 64)


@dataclass
class AblationCurve:
    optimization: str  # which optimization was *disabled* in the numerator
    node_counts: list[int]
    ratio: list[float]  # T_unoptimized / T_optimized


@dataclass
class Fig7Result:
    matrix: str
    curves: list[AblationCurve] = field(default_factory=list)

    def curve(self, optimization: str) -> AblationCurve:
        for c in self.curves:
            if c.optimization == optimization:
                return c
        raise KeyError(optimization)


def run(
    *,
    matrix: str = "M5",
    node_counts: tuple[int, ...] = DEFAULT_NODE_COUNTS,
    scale: int = 128,
    harness: ExperimentHarness | None = None,
) -> Fig7Result:
    harness = harness or ExperimentHarness()
    suite = get(matrix)
    n, nb = suite.order(scale), suite.nb(scale)
    result = Fig7Result(matrix=matrix)
    ablations = {
        "separate-files": dict(separate_files=False),
        "block-wrap": dict(block_wrap=False),
    }
    for name, flags in ablations.items():
        ratios = []
        for m0 in node_counts:
            base = harness.run(n, nb, m0, seed=suite.seed)
            ablated = harness.run(n, nb, m0, seed=suite.seed, **flags)
            t_base = harness.replay(
                base, num_nodes=m0, paper_n=suite.paper_order, node=EC2_MEDIUM
            ).makespan
            t_ablated = harness.replay(
                ablated, num_nodes=m0, paper_n=suite.paper_order, node=EC2_MEDIUM
            ).makespan
            ratios.append(t_ablated / t_base)
        result.curves.append(
            AblationCurve(
                optimization=name, node_counts=list(node_counts), ratio=ratios
            )
        )
    return result


def format_result(res: Fig7Result) -> str:
    xs = res.curves[0].node_counts
    series = {
        f"T_unopt/T ({c.optimization})": [f"{r:.3f}" for r in c.ratio]
        for c in res.curves
    }
    return format_series(
        f"Figure 7 — optimization ablations on {res.matrix}",
        "nodes",
        xs,
        series,
    )


if __name__ == "__main__":
    print(format_result(run()))
