"""Section 7.5 — the head-to-head against ScaLAPACK on the largest matrix.

Paper numbers for M4: ScaLAPACK takes ~8 hours on 128 large instances and
>48 hours on 64 medium instances, versus our 5 and 15 hours — "a small
performance penalty at low scale, better scalability and performance at high
scale".

Reproduced with the calibrated running-time models at paper order, plus an
executed head-to-head at working scale: both systems invert the *same*
matrix, results are cross-checked element-wise, and the baseline's measured
MPI traffic is reported against the pipeline's DFS transfer.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..cluster import ClusterSpec, EC2_LARGE, EC2_MEDIUM
from ..cluster.costmodel import ours_time, scalapack_time
from ..scalapack import ScaLAPACKInverter
from ..workloads.suite import PAPER_NB, get
from .harness import ExperimentHarness
from .report import format_table, seconds_human


@dataclass
class Sec75Result:
    ours_hours_large: float
    scala_hours_large: float
    ours_hours_medium: float
    scala_hours_medium: float
    executed_agreement: float  # max |ours - scalapack| at working scale
    executed_traffic_ratio: float  # scalapack MPI bytes / ours DFS transfer

    @property
    def ours_wins_at_scale(self) -> bool:
        return (
            self.scala_hours_large > self.ours_hours_large
            and self.scala_hours_medium > self.ours_hours_medium
        )


def run(
    *, scale: int = 128, m0: int = 8, harness: ExperimentHarness | None = None
) -> Sec75Result:
    harness = harness or ExperimentHarness()
    suite = get("M4")
    n_paper = suite.paper_order

    large = ClusterSpec(num_nodes=128, node=EC2_LARGE)
    medium = ClusterSpec(num_nodes=64, node=EC2_MEDIUM)
    ours_large = ours_time(n_paper, large, PAPER_NB).total / 3600
    scala_large = scalapack_time(n_paper, large).total / 3600
    ours_medium = ours_time(n_paper, medium, PAPER_NB).total / 3600
    scala_medium = scalapack_time(n_paper, medium).total / 3600

    # Executed head-to-head at working scale.
    n, nb = suite.order(scale), suite.nb(scale)
    a = suite.generate(scale)
    ours_exec = harness.run(n, nb, m0, seed=suite.seed, matrix=a)
    scala_exec = ScaLAPACKInverter(nprocs=m0, block=max(nb // 2, 8)).invert(a)
    agreement = float(np.max(np.abs(ours_exec.inverse - scala_exec.inverse)))
    traffic_ratio = scala_exec.traffic.bytes_sent / max(
        ours_exec.io.bytes_transferred, 1
    )

    return Sec75Result(
        ours_hours_large=ours_large,
        scala_hours_large=scala_large,
        ours_hours_medium=ours_medium,
        scala_hours_medium=scala_medium,
        executed_agreement=agreement,
        executed_traffic_ratio=traffic_ratio,
    )


def format_result(res: Sec75Result) -> str:
    rows = [
        [
            "128 large instances",
            seconds_human(res.ours_hours_large * 3600),
            "~5 h",
            seconds_human(res.scala_hours_large * 3600),
            "~8 h",
        ],
        [
            "64 medium instances",
            seconds_human(res.ours_hours_medium * 3600),
            "~15 h",
            seconds_human(res.scala_hours_medium * 3600),
            "> 48 h",
        ],
    ]
    table = format_table(
        ["Cluster", "ours", "ours (paper)", "ScaLAPACK", "ScaLAPACK (paper)"],
        rows,
        title="Section 7.5 — M4 (order 102400), modeled at paper scale",
    )
    return table + (
        f"\nexecuted cross-check: max |ours - ScaLAPACK| = "
        f"{res.executed_agreement:.2e}; ScaLAPACK moves "
        f"{res.executed_traffic_ratio:.2f}x the pipeline's network bytes "
        f"at working scale"
    )


if __name__ == "__main__":
    print(format_result(run()))
