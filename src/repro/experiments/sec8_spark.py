"""Section 8 — the Spark prediction, measured.

"Therefore, we expect that implementing our algorithm in Spark would improve
performance by reducing read I/O.  What is promising is that our technique
would need minimal changes (if any)."

Both systems invert the same matrix: the Hadoop pipeline with intermediates
on the DFS, the RDD port with intermediates in cached partitions.  Reported:
external read volumes, the element-wise agreement of the results, shuffle
and broadcast traffic of the port, and a lineage-recovery check (one cached
partition is evicted and recomputed).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..spark import SparkContext, SparkInversionConfig, SparkMatrixInverter
from ..workloads.generators import random_dense
from .harness import ExperimentHarness
from .report import bytes_human, format_table


@dataclass
class Sec8Result:
    n: int
    hadoop_read_bytes: int
    spark_external_read_bytes: int
    spark_shuffle_bytes: int
    spark_broadcast_bytes: int
    agreement: float  # max |hadoop - spark|
    lineage_recomputed: int

    @property
    def read_reduction(self) -> float:
        return self.hadoop_read_bytes / max(self.spark_external_read_bytes, 1)


def run(
    *, n: int = 160, nb: int = 40, chunks: int = 4, seed: int = 0,
    harness: ExperimentHarness | None = None,
) -> Sec8Result:
    harness = harness or ExperimentHarness()
    a = random_dense(n, seed=seed) + 0.1 * np.eye(n)
    hadoop = harness.run(n, nb, max(chunks, 2) * 2 // 2 * 2, seed=seed, matrix=a)

    sc = SparkContext(default_parallelism=chunks)
    inverter = SparkMatrixInverter(SparkInversionConfig(nb=nb, chunks=chunks), sc=sc)
    spark = inverter.invert(a)

    # Lineage-recovery check: evict one cached L2' partition and re-collect.
    l2 = inverter.intermediates.get("/Root/L2")
    recomputed = 0
    if l2 is not None:
        before = sc.metrics.recomputations
        if sc.evict(l2, 0):
            l2.collect()
        recomputed = sc.metrics.recomputations - before

    return Sec8Result(
        n=n,
        hadoop_read_bytes=hadoop.io.bytes_read,
        spark_external_read_bytes=spark.external_bytes_read,
        spark_shuffle_bytes=spark.metrics.shuffle_bytes,
        spark_broadcast_bytes=spark.metrics.broadcast_bytes,
        agreement=float(np.max(np.abs(hadoop.inverse - spark.inverse))),
        lineage_recomputed=recomputed,
    )


def format_result(res: Sec8Result) -> str:
    rows = [
        ["external reads (Hadoop pipeline)", bytes_human(res.hadoop_read_bytes)],
        ["external reads (Spark port)", bytes_human(res.spark_external_read_bytes)],
        ["read reduction", f"{res.read_reduction:.0f}x"],
        ["Spark shuffle traffic", bytes_human(res.spark_shuffle_bytes)],
        ["Spark broadcast traffic", bytes_human(res.spark_broadcast_bytes)],
        ["max |hadoop - spark|", f"{res.agreement:.2e}"],
        ["partitions recomputed via lineage", res.lineage_recomputed],
    ]
    return format_table(
        ["quantity", "value"],
        rows,
        title=f"Section 8 — Spark port vs Hadoop pipeline (n={res.n})",
    )


if __name__ == "__main__":
    print(format_result(run()))
