"""Table 3 — the experiment matrices M1-M5.

Reproduces every column: order, element count, text size, binary size, and
the number of MapReduce jobs.  The job counts are verified two ways — the
closed form at paper scale, and the *actual* job count of an executed
pipeline at working scale (the scale factor divides n and nb together, so
the pipeline structure is identical).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..workloads.suite import PAPER_NB, TABLE3, SuiteMatrix
from .harness import ExperimentHarness
from .report import format_table

#: Table 3 as printed in the paper (for exact comparison).
PAPER_ROWS = {
    "M1": dict(order=20480, elements=0.42, text_gb=8, binary_gb=3.2, jobs=9),
    "M2": dict(order=32768, elements=1.07, text_gb=20, binary_gb=8, jobs=17),
    "M3": dict(order=40960, elements=1.68, text_gb=40, binary_gb=16, jobs=17),
    "M4": dict(order=102400, elements=10.49, text_gb=200, binary_gb=80, jobs=33),
    "M5": dict(order=16384, elements=0.26, text_gb=5, binary_gb=2, jobs=9),
}


@dataclass
class Table3Row:
    name: str
    order: int
    elements_billion: float
    text_gb: float
    binary_gb: float
    jobs_formula: int
    jobs_paper: int
    jobs_executed: int | None = None


@dataclass
class Table3Result:
    rows: list[Table3Row]
    scale: int

    def all_job_counts_match(self) -> bool:
        return all(
            r.jobs_formula == r.jobs_paper
            and (r.jobs_executed is None or r.jobs_executed == r.jobs_formula)
            for r in self.rows
        )


def run(
    *,
    execute: bool = True,
    scale: int = 128,
    m0: int = 4,
    matrices: tuple[SuiteMatrix, ...] = TABLE3,
    harness: ExperimentHarness | None = None,
) -> Table3Result:
    harness = harness or ExperimentHarness()
    rows: list[Table3Row] = []
    for m in matrices:
        executed_jobs = None
        if execute:
            result = harness.run(m.order(scale), m.nb(scale), m0, seed=m.seed)
            executed_jobs = result.num_jobs
        rows.append(
            Table3Row(
                name=m.name,
                order=m.paper_order,
                elements_billion=m.elements_billion,
                text_gb=m.text_gb,
                binary_gb=m.binary_gb,
                jobs_formula=m.jobs,
                jobs_paper=PAPER_ROWS[m.name]["jobs"],
                jobs_executed=executed_jobs,
            )
        )
    return Table3Result(rows=rows, scale=scale)


def format_result(res: Table3Result) -> str:
    rows = [
        [
            r.name,
            r.order,
            round(r.elements_billion, 2),
            round(r.text_gb, 1),
            round(r.binary_gb, 1),
            r.jobs_formula,
            r.jobs_paper,
            "-" if r.jobs_executed is None else r.jobs_executed,
        ]
        for r in res.rows
    ]
    return format_table(
        [
            "Matrix",
            "Order",
            "Elements (B)",
            "Text (GB)",
            "Binary (GB)",
            "Jobs (formula)",
            "Jobs (paper)",
            f"Jobs (executed, 1/{res.scale} scale)",
        ],
        rows,
        title=f"Table 3 — experiment matrices (nb={PAPER_NB})",
    )


if __name__ == "__main__":
    print(format_result(run()))
