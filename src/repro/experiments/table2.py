"""Table 2 — time complexity of triangular inversion + final product.

Same methodology as Table 1: model columns from the closed forms, measured
columns from the final MapReduce job of a real run (its mappers invert the
triangular factors, its reducers form ``U^-1 L^-1``).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..cluster.costmodel import (
    BYTES_PER_ELEMENT,
    ours_inversion_cost,
    scalapack_inversion_cost,
)
from .harness import ExperimentHarness
from .report import format_table


@dataclass
class Table2Row:
    algorithm: str
    n: int
    m0: int
    write_elements: float
    read_elements: float
    transfer_elements: float
    mults: float


@dataclass
class Table2Result:
    model_ours: Table2Row
    model_scalapack: Table2Row
    measured_ours: Table2Row

    @property
    def read_ratio(self) -> float:
        return self.measured_ours.read_elements / self.model_ours.read_elements

    @property
    def write_ratio(self) -> float:
        return self.measured_ours.write_elements / self.model_ours.write_elements


def run(
    n: int = 256,
    nb: int = 32,
    m0: int = 8,
    seed: int = 0,
    harness: ExperimentHarness | None = None,
) -> Table2Result:
    harness = harness or ExperimentHarness()
    result = harness.run(n, nb, m0, seed=seed)
    final_jobs = [j for j in result.record.job_results if j.name == "invert-final"]
    assert len(final_jobs) == 1, "pipeline must end with exactly one inversion job"
    job = final_jobs[0]
    read_b = sum(t.bytes_read for t in job.traces)
    write_b = sum(t.bytes_written for t in job.traces)
    mults = sum(t.flops for t in job.traces)
    measured = Table2Row(
        algorithm="ours (measured)",
        n=n,
        m0=m0,
        write_elements=write_b / BYTES_PER_ELEMENT,
        read_elements=read_b / BYTES_PER_ELEMENT,
        transfer_elements=read_b / BYTES_PER_ELEMENT,
        mults=mults,
    )
    ours = ours_inversion_cost(n, m0)
    scala = scalapack_inversion_cost(n, m0)
    return Table2Result(
        model_ours=Table2Row(
            "ours (Table 2)", n, m0, ours.write, ours.read, ours.transfer, ours.mults
        ),
        model_scalapack=Table2Row(
            "ScaLAPACK (Table 2)",
            n,
            m0,
            scala.write,
            scala.read,
            scala.transfer,
            scala.mults,
        ),
        measured_ours=measured,
    )


def format_result(res: Table2Result) -> str:
    rows = [
        [
            r.algorithm,
            r.write_elements,
            r.read_elements,
            r.transfer_elements,
            r.mults,
        ]
        for r in (res.model_ours, res.measured_ours, res.model_scalapack)
    ]
    table = format_table(
        ["Algorithm", "Write (elems)", "Read (elems)", "Transfer (elems)", "Mults"],
        rows,
        title=f"Table 2 — triangular inversion + product cost "
        f"(n={res.model_ours.n}, m0={res.model_ours.m0})",
    )
    return (
        table
        + f"\nmeasured/model ratios: read {res.read_ratio:.2f}, "
        + f"write {res.write_ratio:.2f}"
    )


if __name__ == "__main__":
    print(format_result(run()))
