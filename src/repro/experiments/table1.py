"""Table 1 — time complexity of LU decomposition.

Reproduces the table two ways:

* the **model** columns are the closed forms (ours: write 3/2 n^2, read
  (l+3) n^2, transfer (l+3) n^2, n^3/3 mults; ScaLAPACK: n^2 / n^2 /
  (2/3) m0 n^2 / n^3/3);
* the **measured** columns come from executing the LU stage of the real
  pipeline and summing its task traces — validating that the implementation
  moves the amount of data the paper's analysis says it should (the factor
  files are stored as dense squares rather than packed triangles, so measured
  reads run up to ~2x the packed-triangle model; the bench asserts that
  envelope).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..cluster.costmodel import BYTES_PER_ELEMENT, ours_lu_cost, scalapack_lu_cost
from ..inversion import InversionConfig, MatrixInverter
from ..mapreduce import MapReduceRuntime, RuntimeConfig
from ..workloads.generators import random_dense
from .report import format_table


@dataclass
class Table1Row:
    algorithm: str
    n: int
    m0: int
    write_elements: float
    read_elements: float
    transfer_elements: float
    mults: float


@dataclass
class Table1Result:
    model_ours: Table1Row
    model_scalapack: Table1Row
    measured_ours: Table1Row

    @property
    def read_ratio(self) -> float:
        """Measured / modeled read volume for our algorithm."""
        return self.measured_ours.read_elements / self.model_ours.read_elements

    @property
    def write_ratio(self) -> float:
        return self.measured_ours.write_elements / self.model_ours.write_elements


def run(n: int = 256, nb: int = 32, m0: int = 8, seed: int = 0) -> Table1Result:
    """Execute the LU stage and compare its I/O against the Table 1 model."""
    a = random_dense(n, seed=seed)
    runtime = MapReduceRuntime(config=RuntimeConfig(num_workers=4))
    try:
        inverter = MatrixInverter(
            # Cache off: Table 1 models physical DFS reads.  Commit off:
            # manifest metadata would perturb the paper's byte accounting.
            config=InversionConfig(
                nb=nb, m0=m0, block_cache_bytes=0, output_commit=False
            ),
            runtime=runtime,
        )
        factors = inverter.lu(a)
    finally:
        runtime.shutdown()

    read_b = write_b = mults = 0.0
    for trace in factors.record.all_traces():
        read_b += trace.bytes_read
        write_b += trace.bytes_written
        mults += trace.flops
    for phase in factors.record.master_phases:
        read_b += phase.bytes_read
        write_b += phase.bytes_written
        mults += phase.flops
    measured = Table1Row(
        algorithm="ours (measured)",
        n=n,
        m0=m0,
        write_elements=write_b / BYTES_PER_ELEMENT,
        read_elements=read_b / BYTES_PER_ELEMENT,
        transfer_elements=read_b / BYTES_PER_ELEMENT,  # HDFS: read == transfer
        mults=mults,
    )
    ours = ours_lu_cost(n, m0)
    scala = scalapack_lu_cost(n, m0)
    return Table1Result(
        model_ours=Table1Row(
            "ours (Table 1)", n, m0, ours.write, ours.read, ours.transfer, ours.mults
        ),
        model_scalapack=Table1Row(
            "ScaLAPACK (Table 1)",
            n,
            m0,
            scala.write,
            scala.read,
            scala.transfer,
            scala.mults,
        ),
        measured_ours=measured,
    )


def format_result(res: Table1Result) -> str:
    rows = [
        [
            r.algorithm,
            r.write_elements,
            r.read_elements,
            r.transfer_elements,
            r.mults,
        ]
        for r in (res.model_ours, res.measured_ours, res.model_scalapack)
    ]
    table = format_table(
        ["Algorithm", "Write (elems)", "Read (elems)", "Transfer (elems)", "Mults"],
        rows,
        title=f"Table 1 — LU decomposition cost (n={res.model_ours.n}, "
        f"m0={res.model_ours.m0})",
    )
    return (
        table
        + f"\nmeasured/model ratios: read {res.read_ratio:.2f}, "
        + f"write {res.write_ratio:.2f}"
    )


if __name__ == "__main__":
    print(format_result(run()))
