"""The paper's evaluation, one module per table/figure/section:

====================  ==========================================
``table1``            Table 1 — LU decomposition cost model
``table2``            Table 2 — inversion cost model
``table3``            Table 3 — the M1-M5 matrix suite
``fig6``              Figure 6 — strong scalability
``fig7``              Figure 7 — optimization ablations
``fig8``              Figure 8 — ScaLAPACK running-time ratio
``sec72``             Section 7.2 — numerical accuracy
``sec74``             Section 7.4 — the very large matrix + faults
``sec75``             Section 7.5 — ScaLAPACK head-to-head
``sec8_spark``        Section 8 — the Spark port, measured
``launch_overhead``   Section 7.2 — HaLoop / launch-cost study
====================  ==========================================

Each module exposes ``run(...) -> <Result>`` and ``format_result`` and can be
executed directly (``python -m repro.experiments.fig6``).
"""

from . import (
    fig6,
    fig7,
    fig8,
    launch_overhead,
    sec72,
    sec74,
    sec75,
    sec8_spark,
    table1,
    table2,
    table3,
)
from .harness import ExperimentHarness

__all__ = [
    "ExperimentHarness",
    "fig6",
    "launch_overhead",
    "fig7",
    "fig8",
    "sec72",
    "sec8_spark",
    "sec74",
    "sec75",
    "table1",
    "table2",
    "table3",
]
