"""Section 7.4 — scaling to the very large matrix M4.

The paper's findings, each reproduced here:

* 33 MapReduce jobs invert the order-102400 matrix;
* ~5 hours on 128 large instances with no failures, ~8 hours when one mapper
  of the triangular-inversion job failed and was rescheduled, ~15 hours on
  64 medium instances;
* the run writes >500 GB and reads >20 TB of data.

Method: execute M4's pipeline at working scale (same job structure), replay
on the simulated clusters at paper order, and separately execute a run with
an injected mapper failure in the final job to confirm recovery and measure
the simulated slowdown.  I/O volumes at paper scale come from the measured
byte counters lifted quadratically.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..cluster import EC2_LARGE, EC2_MEDIUM
from ..mapreduce.faults import FailOnce
from ..mapreduce.types import TaskKind
from ..workloads.suite import get
from .harness import ExperimentHarness
from .report import bytes_human, format_table, seconds_human


@dataclass
class Sec74Result:
    num_jobs: int
    hours_large_no_failure: float
    hours_large_with_failure: float
    hours_medium: float
    paper_write_bytes: float
    paper_read_bytes: float
    residual_ok: bool
    failure_recovered: bool


def run(
    *,
    scale: int = 128,
    m0_large: int = 128,
    m0_medium: int = 64,
    harness: ExperimentHarness | None = None,
) -> Sec74Result:
    """Executed m0 matches the simulated cluster width so the task DAG and
    the per-node I/O volumes (which grow with m0, Table 1's ``l``) are the
    real ones for each cluster."""
    harness = harness or ExperimentHarness()
    suite = get("M4")
    n, nb = suite.order(scale), suite.nb(scale)
    byte_scale = (suite.paper_order / n) ** 2

    clean_large = harness.run(n, nb, m0_large, seed=suite.seed)
    t_large = harness.replay(
        clean_large, num_nodes=m0_large, paper_n=suite.paper_order, node=EC2_LARGE
    ).makespan
    clean_medium = harness.run(n, nb, m0_medium, seed=suite.seed)
    t_medium = harness.replay(
        clean_medium, num_nodes=m0_medium, paper_n=suite.paper_order, node=EC2_MEDIUM
    ).makespan

    # Inject the paper's failure: a mapper of the triangular-inversion job
    # dies on its first attempt and is rescheduled.
    policy = FailOnce(
        job_substring="invert-final", kind=TaskKind.MAP, task_index=0
    )
    a = suite.generate(scale)
    failed = harness.run(
        n, nb, m0_large, seed=suite.seed, fault_policy=policy, matrix=a
    )
    t_large_failure = harness.replay(
        failed, num_nodes=m0_large, paper_n=suite.paper_order, node=EC2_LARGE
    ).makespan
    residual_ok = failed.residual(a) < 1e-5
    clean = clean_large

    return Sec74Result(
        num_jobs=clean.num_jobs,
        hours_large_no_failure=t_large / 3600,
        hours_large_with_failure=t_large_failure / 3600,
        hours_medium=t_medium / 3600,
        paper_write_bytes=clean.io.bytes_written * byte_scale,
        paper_read_bytes=clean.io.bytes_read * byte_scale,
        residual_ok=residual_ok,
        failure_recovered=any(
            j.attempts_failed > 0 for j in failed.record.job_results
        ),
    )


def format_result(res: Sec74Result) -> str:
    rows = [
        ["MapReduce jobs", res.num_jobs, 33],
        ["128 large, no failure", seconds_human(res.hours_large_no_failure * 3600), "~5 h"],
        [
            "128 large, one mapper failure",
            seconds_human(res.hours_large_with_failure * 3600),
            "~8 h",
        ],
        ["64 medium", seconds_human(res.hours_medium * 3600), "~15 h"],
        ["data written (paper scale)", bytes_human(res.paper_write_bytes), "> 500 GB"],
        ["data read (paper scale)", bytes_human(res.paper_read_bytes), "> 20 TB"],
        ["failure recovered, result correct", str(res.residual_ok and res.failure_recovered), "True"],
    ]
    return format_table(
        ["Quantity", "reproduced", "paper"],
        rows,
        title="Section 7.4 — inverting M4 (order 102400)",
    )


if __name__ == "__main__":
    print(format_result(run()))
