"""``python -m repro experiments`` / ``table`` / ``figure`` / ``section`` /
``study`` — the paper-artifact subcommands."""

from __future__ import annotations

import argparse
import importlib
import sys
from typing import Any

#: (kind, which) -> experiments submodule regenerating that artifact.
ARTIFACTS: dict[tuple[str, str], str] = {
    ("table", "1"): "table1",
    ("table", "2"): "table2",
    ("table", "3"): "table3",
    ("figure", "6"): "fig6",
    ("figure", "7"): "fig7",
    ("figure", "8"): "fig8",
    ("section", "7.2"): "sec72",
    ("section", "7.4"): "sec74",
    ("section", "7.5"): "sec75",
    ("section", "8"): "sec8_spark",
    ("study", "launch-overhead"): "launch_overhead",
}


def cmd_experiments(args: argparse.Namespace) -> int:
    from .run_all import main as run_all

    run_all(fast=args.fast)
    return 0


def cmd_artifact(kind: str, args: argparse.Namespace) -> int:
    key = (kind, args.which)
    if key not in ARTIFACTS:
        valid = sorted(w for k, w in ARTIFACTS if k == kind)
        print(f"unknown {kind} {args.which!r}; choose from {valid}", file=sys.stderr)
        return 2
    module = importlib.import_module(f".{ARTIFACTS[key]}", __package__)
    print(module.format_result(module.run()))
    return 0


def register_commands(registry: Any) -> None:
    """Hook for the ``python -m repro`` subcommand registry."""
    registry.add(
        "experiments",
        cmd_experiments,
        help="regenerate every table/figure",
        configure=lambda p: p.add_argument("--fast", action="store_true"),
    )
    for kind in ("table", "figure", "section", "study"):
        registry.add(
            kind,
            lambda a, k=kind: cmd_artifact(k, a),
            help=f"regenerate one {kind}",
            configure=lambda p: p.add_argument("which"),
        )


__all__ = ["ARTIFACTS", "cmd_artifact", "cmd_experiments", "register_commands"]
