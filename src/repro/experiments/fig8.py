"""Figure 8 — running-time ratio of ScaLAPACK to our algorithm.

The paper plots ``T_scalapack / T_ours`` for M1-M3 over 1-64 medium nodes:
ScaLAPACK is slightly faster at small scale (ratio below 1 — it keeps
everything in memory and reads the input once), while the MapReduce pipeline
approaches and overtakes it as nodes are added and as the matrix grows,
because ScaLAPACK's network traffic is O(m0 n^2) (Tables 1-2) and its panel
synchronization scales poorly.

Reproduction has two parts:

* the **figure series** come from the running-time models of
  ``repro.cluster.costmodel`` evaluated at paper scale (both systems on the
  same simulated EC2 hardware);
* a **measured crossover check**: the real ScaLAPACK baseline's communication
  volume, measured by the MPI substrate at working scale, grows linearly
  with the process count while the pipeline's HDFS traffic stays near-flat —
  the mechanism behind the modeled crossover.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..cluster import ClusterSpec, EC2_MEDIUM
from ..cluster.costmodel import ours_time, scalapack_time
from ..scalapack import ScaLAPACKInverter
from ..workloads.suite import PAPER_NB, get
from ..workloads.generators import random_dense
from .harness import ExperimentHarness
from .report import format_series

# Below ~8 medium nodes the larger matrices no longer fit in ScaLAPACK's
# aggregate memory (3.7 GB/node), so the model's spill term dominates; the
# paper's Figure 8 likewise starts its curves at small-but-sufficient
# clusters.
DEFAULT_NODE_COUNTS = (8, 16, 32, 64)
DEFAULT_MATRICES = ("M1", "M2", "M3")


@dataclass
class RatioCurve:
    matrix: str
    node_counts: list[int]
    ratio: list[float]  # T_scalapack / T_ours


@dataclass
class TrafficPoint:
    nprocs: int
    scalapack_bytes: int
    ours_bytes: int


@dataclass
class Fig8Result:
    curves: list[RatioCurve] = field(default_factory=list)
    traffic: list[TrafficPoint] = field(default_factory=list)

    def curve(self, name: str) -> RatioCurve:
        for c in self.curves:
            if c.matrix == name:
                return c
        raise KeyError(name)


def run(
    *,
    matrices: tuple[str, ...] = DEFAULT_MATRICES,
    node_counts: tuple[int, ...] = DEFAULT_NODE_COUNTS,
    measure_traffic: bool = True,
    traffic_n: int = 128,
    traffic_procs: tuple[int, ...] = (2, 4, 8),
    harness: ExperimentHarness | None = None,
) -> Fig8Result:
    result = Fig8Result()
    for name in matrices:
        suite = get(name)
        ratios = []
        for m0 in node_counts:
            cluster = ClusterSpec(num_nodes=m0, node=EC2_MEDIUM)
            t_ours = ours_time(suite.paper_order, cluster, PAPER_NB).total
            t_scala = scalapack_time(suite.paper_order, cluster).total
            ratios.append(t_scala / t_ours)
        result.curves.append(
            RatioCurve(matrix=name, node_counts=list(node_counts), ratio=ratios)
        )

    if measure_traffic:
        harness = harness or ExperimentHarness()
        a = random_dense(traffic_n, seed=42)
        for p in traffic_procs:
            scala = ScaLAPACKInverter(nprocs=p, block=16).invert(a)
            ours = harness.run(
                traffic_n, max(traffic_n // 8, 4), p if p % 2 == 0 else p + 1,
                seed=42, matrix=a,
            )
            result.traffic.append(
                TrafficPoint(
                    nprocs=p,
                    scalapack_bytes=scala.traffic.bytes_sent,
                    ours_bytes=ours.io.bytes_transferred,
                )
            )
    return result


def format_result(res: Fig8Result) -> str:
    xs = res.curves[0].node_counts
    series = {c.matrix: [f"{r:.2f}" for r in c.ratio] for c in res.curves}
    out = format_series(
        "Figure 8 — T_scalapack / T_ours vs nodes (modeled at paper scale)",
        "nodes",
        xs,
        series,
    )
    if res.traffic:
        lines = ["", "Measured communication at working scale:"]
        for t in res.traffic:
            lines.append(
                f"  p={t.nprocs}: ScaLAPACK MPI traffic "
                f"{t.scalapack_bytes / 1e6:.2f} MB, pipeline DFS transfer "
                f"{t.ours_bytes / 1e6:.2f} MB"
            )
        out += "\n".join(lines)
    return out


if __name__ == "__main__":
    print(format_result(run()))
