"""Figure 6 — strong scalability of the algorithm.

The paper plots running time versus number of EC2 medium instances for M1,
M2, and M3, against the ideal line ``T(m) = T(1)/m``, observing near-ideal
scaling with a deviation at high node counts caused by the constant job
launch time, and better scalability for larger matrices.

Reproduction: for each node count the pipeline is *executed* at working
scale with that m0 (so the task DAG is the real one for that cluster width),
then *replayed* on a simulated EC2-medium cluster with per-task work lifted
to the paper's order.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..cluster import EC2_MEDIUM
from ..workloads.suite import SuiteMatrix, get
from .harness import ExperimentHarness
from .report import format_series, seconds_human

DEFAULT_NODE_COUNTS = (2, 4, 8, 16, 32, 64)
DEFAULT_MATRICES = ("M1", "M2", "M3")


@dataclass
class ScalingCurve:
    matrix: str
    paper_order: int
    node_counts: list[int]
    seconds: list[float]

    @property
    def ideal(self) -> list[float]:
        """Ideal line anchored at the first measured point."""
        t0, m0 = self.seconds[0], self.node_counts[0]
        return [t0 * m0 / m for m in self.node_counts]

    def efficiency(self, i: int) -> float:
        """Parallel efficiency at point i relative to the first point."""
        return self.ideal[i] / self.seconds[i]


@dataclass
class Fig6Result:
    curves: list[ScalingCurve] = field(default_factory=list)

    def curve(self, name: str) -> ScalingCurve:
        for c in self.curves:
            if c.matrix == name:
                return c
        raise KeyError(name)


def run(
    *,
    matrices: tuple[str, ...] = DEFAULT_MATRICES,
    node_counts: tuple[int, ...] = DEFAULT_NODE_COUNTS,
    scale: int = 128,
    harness: ExperimentHarness | None = None,
) -> Fig6Result:
    harness = harness or ExperimentHarness()
    result = Fig6Result()
    for name in matrices:
        suite: SuiteMatrix = get(name)
        n, nb = suite.order(scale), suite.nb(scale)
        seconds = []
        for m0 in node_counts:
            executed = harness.run(n, nb, m0, seed=suite.seed)
            report = harness.replay(
                executed,
                num_nodes=m0,
                paper_n=suite.paper_order,
                node=EC2_MEDIUM,
            )
            seconds.append(report.makespan)
        result.curves.append(
            ScalingCurve(
                matrix=name,
                paper_order=suite.paper_order,
                node_counts=list(node_counts),
                seconds=seconds,
            )
        )
    return result


def format_result(res: Fig6Result) -> str:
    xs = res.curves[0].node_counts
    series: dict[str, list[str]] = {}
    for c in res.curves:
        series[c.matrix] = [seconds_human(s) for s in c.seconds]
    series["ideal (M1)"] = [seconds_human(s) for s in res.curves[0].ideal]
    out = format_series(
        "Figure 6 — running time vs number of EC2 medium nodes", "nodes", xs, series
    )
    eff_lines = [
        f"{c.matrix}: efficiency at {c.node_counts[-1]} nodes = "
        f"{c.efficiency(len(c.node_counts) - 1):.2f}"
        for c in res.curves
    ]
    return out + "\n" + "\n".join(eff_lines)


if __name__ == "__main__":
    print(format_result(run()))
