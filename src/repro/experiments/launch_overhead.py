"""Job-launch-overhead sensitivity — the Section 7.2 HaLoop discussion.

"We investigated improving scalability by using systems that support
iterative MapReduce computations, such as HaLoop.  However ... HaLoop and
similar systems do not reduce the launch time of MapReduce jobs. ...  There
are techniques for reducing the overhead of launching MapReduce jobs, such
as having pools of worker processes ...  These techniques can definitely
benefit our work, but they do not require any changes to the matrix
inversion MapReduce pipeline."

This experiment quantifies that: the same recorded pipeline run is replayed
with different per-job launch costs (22 s = the paper's Hadoop; ~2 s = a
warm worker pool; 0 s = the ideal), showing that (a) high-node-count
efficiency improves markedly as the launch cost shrinks and (b) nothing in
the pipeline changes — only a replay parameter.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..cluster import EC2_MEDIUM
from ..workloads.suite import get
from .harness import ExperimentHarness
from .report import format_series

DEFAULT_OVERHEADS = (22.0, 2.0, 0.0)
DEFAULT_NODE_COUNTS = (4, 16, 64)


@dataclass
class OverheadCurve:
    overhead: float
    node_counts: list[int]
    seconds: list[float]

    def efficiency_at_max(self) -> float:
        t0, m0 = self.seconds[0], self.node_counts[0]
        ideal = t0 * m0 / self.node_counts[-1]
        return ideal / self.seconds[-1]


@dataclass
class LaunchOverheadResult:
    matrix: str
    curves: list[OverheadCurve] = field(default_factory=list)

    def curve(self, overhead: float) -> OverheadCurve:
        for c in self.curves:
            if c.overhead == overhead:
                return c
        raise KeyError(overhead)


def run(
    *,
    matrix: str = "M5",
    overheads: tuple[float, ...] = DEFAULT_OVERHEADS,
    node_counts: tuple[int, ...] = DEFAULT_NODE_COUNTS,
    scale: int = 128,
    harness: ExperimentHarness | None = None,
) -> LaunchOverheadResult:
    harness = harness or ExperimentHarness()
    suite = get(matrix)
    n, nb = suite.order(scale), suite.nb(scale)
    result = LaunchOverheadResult(matrix=matrix)
    for overhead in overheads:
        seconds = []
        for m0 in node_counts:
            executed = harness.run(n, nb, m0, seed=suite.seed)
            report = harness.replay(
                executed,
                num_nodes=m0,
                paper_n=suite.paper_order,
                node=EC2_MEDIUM,
                job_launch_overhead=overhead,
            )
            seconds.append(report.makespan)
        result.curves.append(
            OverheadCurve(
                overhead=overhead, node_counts=list(node_counts), seconds=seconds
            )
        )
    return result


def format_result(res: LaunchOverheadResult) -> str:
    xs = res.curves[0].node_counts
    series = {
        f"launch={c.overhead:g}s": [f"{s:.0f}s" for s in c.seconds]
        for c in res.curves
    }
    out = format_series(
        f"Job-launch-overhead sensitivity on {res.matrix} (HaLoop discussion)",
        "nodes",
        xs,
        series,
    )
    effs = [
        f"launch={c.overhead:g}s: efficiency at {c.node_counts[-1]} nodes = "
        f"{c.efficiency_at_max():.2f}"
        for c in res.curves
    ]
    return out + "\n" + "\n".join(effs)


if __name__ == "__main__":
    print(format_result(run()))
