"""ASCII reporting helpers: the experiments print the same rows/series the
paper's tables and figures show."""

from __future__ import annotations

from typing import Any, Sequence


def format_table(
    headers: Sequence[str], rows: Sequence[Sequence[Any]], title: str | None = None
) -> str:
    """Fixed-width table with right-aligned numeric columns."""
    str_rows = [[_fmt(v) for v in row] for row in rows]
    widths = [
        max(len(h), *(len(r[i]) for r in str_rows)) if str_rows else len(h)
        for i, h in enumerate(headers)
    ]
    lines: list[str] = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in str_rows:
        lines.append("  ".join(c.rjust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def format_series(
    title: str, x_name: str, xs: Sequence[Any], series: dict[str, Sequence[Any]]
) -> str:
    """One figure as columns: x plus one column per named series."""
    headers = [x_name] + list(series)
    rows = [
        [x] + [series[name][i] for name in series] for i, x in enumerate(xs)
    ]
    return format_table(headers, rows, title=title)


def _fmt(v: Any) -> str:
    if isinstance(v, bool):
        return str(v)
    if isinstance(v, float):
        if v == 0:
            return "0"
        if abs(v) >= 1e5 or abs(v) < 1e-3:
            return f"{v:.3e}"
        return f"{v:.3f}".rstrip("0").rstrip(".")
    return str(v)


def seconds_human(s: float) -> str:
    """Humanized duration (the paper reports hours for the big runs)."""
    if s < 120:
        return f"{s:.1f} s"
    if s < 7200:
        return f"{s / 60:.1f} min"
    return f"{s / 3600:.2f} h"


def bytes_human(b: float) -> str:
    for unit, scale in [("TB", 1e12), ("GB", 1e9), ("MB", 1e6), ("KB", 1e3)]:
        if abs(b) >= scale:
            return f"{b / scale:.2f} {unit}"
    return f"{b:.0f} B"
