"""Section 7.2's correctness check.

"In order to verify the correctness of our implementation and check whether
the data type double is precise enough, we compute In - M M^-1 for matrices
M1, M2, M3, and M5.  We find that every element in the computed matrices is
less than 1e-5."

Reproduced at working scale (smaller orders only make the bound easier, so a
pass here is necessary but the bench also checks the residual's growth trend
across orders to confirm the paper-scale bound is plausible).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..linalg.verify import PAPER_RESIDUAL_BOUND, identity_residual
from ..workloads.suite import get
from .harness import ExperimentHarness
from .report import format_table

DEFAULT_MATRICES = ("M1", "M2", "M3", "M5")


@dataclass
class AccuracyRow:
    matrix: str
    order: int
    residual: float
    passes: bool


@dataclass
class Sec72Result:
    rows: list[AccuracyRow] = field(default_factory=list)

    @property
    def all_pass(self) -> bool:
        return all(r.passes for r in self.rows)

    @property
    def worst_residual(self) -> float:
        return max(r.residual for r in self.rows)


def run(
    *,
    matrices: tuple[str, ...] = DEFAULT_MATRICES,
    scale: int = 128,
    m0: int = 4,
    harness: ExperimentHarness | None = None,
) -> Sec72Result:
    harness = harness or ExperimentHarness()
    result = Sec72Result()
    for name in matrices:
        suite = get(name)
        n, nb = suite.order(scale), suite.nb(scale)
        a = suite.generate(scale)
        run_result = harness.run(n, nb, m0, seed=suite.seed, matrix=a)
        residual = identity_residual(a, run_result.inverse)
        result.rows.append(
            AccuracyRow(
                matrix=name,
                order=n,
                residual=residual,
                passes=residual < PAPER_RESIDUAL_BOUND,
            )
        )
    return result


def format_result(res: Sec72Result) -> str:
    rows = [
        [r.matrix, r.order, f"{r.residual:.3e}", "yes" if r.passes else "NO"]
        for r in res.rows
    ]
    return format_table(
        ["Matrix", "Order (scaled)", "max |I - M M^-1|", f"< {PAPER_RESIDUAL_BOUND:g}"],
        rows,
        title="Section 7.2 — numerical accuracy of the pipeline (double precision)",
    )


if __name__ == "__main__":
    print(format_result(run()))
