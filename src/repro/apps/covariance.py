"""Precision-matrix estimation (Section 1's bioinformatics motivation).

Protein-contact prediction from sequence variation [Marks et al. 2011] works
by inverting the residue covariance matrix: large entries of the *precision*
matrix ``C^-1`` indicate direct couplings (contacts), while the raw
covariance mixes direct and transitive correlations.  This module generates a
synthetic "protein" with a known sparse coupling structure, estimates the
covariance from samples, inverts it through the MapReduce pipeline, and
scores how well the top precision entries recover the true contacts.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..inversion import InversionConfig, MatrixInverter
from ..mapreduce import MapReduceRuntime


def synthetic_contacts(n_sites: int, n_contacts: int, seed: int = 0) -> list[tuple[int, int]]:
    """A random sparse set of off-diagonal couplings (the "true" contacts)."""
    rng = np.random.default_rng(seed)
    contacts: set[tuple[int, int]] = set()
    while len(contacts) < n_contacts:
        i, j = sorted(rng.integers(0, n_sites, 2).tolist())
        if j > i + 1:  # skip trivial neighbours
            contacts.add((i, j))
    return sorted(contacts)


def precision_from_contacts(
    n_sites: int, contacts: list[tuple[int, int]], strength: float = 0.4
) -> np.ndarray:
    """Build a sparse SPD precision matrix whose off-diagonal support is the
    contact set (a Gaussian graphical model)."""
    prec = np.eye(n_sites)
    for i, j in contacts:
        prec[i, j] = prec[j, i] = -strength
    # Diagonal loading to guarantee positive definiteness.
    row_mass = np.sum(np.abs(prec), axis=1) - np.diag(prec)
    np.fill_diagonal(prec, row_mass + 1.0)
    return prec


def sample_observations(
    precision: np.ndarray, n_samples: int, seed: int = 0
) -> np.ndarray:
    """Draw samples from N(0, precision^-1) (Cholesky of the covariance)."""
    rng = np.random.default_rng(seed)
    cov = np.linalg.inv(precision)
    chol = np.linalg.cholesky(cov)
    z = rng.standard_normal((n_samples, precision.shape[0]))
    return z @ chol.T


def empirical_covariance(samples: np.ndarray, shrinkage: float = 0.05) -> np.ndarray:
    """Shrinkage-regularized sample covariance (keeps it invertible when
    samples are scarce — the situation in real sequence alignments)."""
    x = samples - samples.mean(axis=0)
    cov = x.T @ x / max(len(samples) - 1, 1)
    return (1 - shrinkage) * cov + shrinkage * np.eye(cov.shape[0])


@dataclass
class ContactPrediction:
    """Predicted contacts and their accuracy against the ground truth."""

    predicted: list[tuple[int, int]]
    true_contacts: list[tuple[int, int]]
    precision_matrix: np.ndarray

    @property
    def true_positive_rate(self) -> float:
        truth = set(self.true_contacts)
        if not self.predicted:
            return 0.0
        hits = sum(1 for c in self.predicted if c in truth)
        return hits / len(self.predicted)


def predict_contacts(
    samples: np.ndarray,
    n_predictions: int,
    *,
    true_contacts: list[tuple[int, int]] | None = None,
    config: InversionConfig | None = None,
    runtime: MapReduceRuntime | None = None,
) -> ContactPrediction:
    """Invert the empirical covariance on the pipeline and rank couplings.

    The top ``n_predictions`` off-diagonal precision entries (by absolute
    partial correlation, skipping adjacent sites) are the predicted contacts.
    """
    cov = empirical_covariance(samples)
    inverter = MatrixInverter(config=config, runtime=runtime)
    try:
        prec = inverter.invert(cov).inverse
    finally:
        inverter.close()
    # Partial correlations from the precision matrix.
    d = np.sqrt(np.diag(prec))
    partial = -prec / np.outer(d, d)
    n = prec.shape[0]
    scores: list[tuple[float, int, int]] = []
    for i in range(n):
        for j in range(i + 2, n):  # skip self and trivial neighbours
            scores.append((abs(partial[i, j]), i, j))
    scores.sort(reverse=True)
    predicted = [(i, j) for _, i, j in scores[:n_predictions]]
    return ContactPrediction(
        predicted=predicted,
        true_contacts=true_contacts or [],
        precision_matrix=prec,
    )
