"""The introduction's motivating applications, built on the public API:
linear solving, inverse-iteration eigenpairs, CT reconstruction, and
precision-matrix contact prediction."""

from .covariance import (
    ContactPrediction,
    empirical_covariance,
    precision_from_contacts,
    predict_contacts,
    sample_observations,
    synthetic_contacts,
)
from .ct_reconstruction import (
    CTReconstructor,
    ReconstructionReport,
    projection_matrix,
    projection_matrix_2d,
    shepp_logan_1d,
    shepp_logan_2d,
)
from .inverse_iteration import EigenResult, inverse_iteration, rayleigh_quotient
from .linear_solver import LinearSolver, SolveReport
from .solver_comparison import (
    ExecutedComparison,
    StrategyComparison,
    compare_strategies,
    execute_both,
)

__all__ = [
    "CTReconstructor",
    "ContactPrediction",
    "EigenResult",
    "ExecutedComparison",
    "StrategyComparison",
    "compare_strategies",
    "execute_both",
    "LinearSolver",
    "ReconstructionReport",
    "SolveReport",
    "empirical_covariance",
    "inverse_iteration",
    "precision_from_contacts",
    "predict_contacts",
    "projection_matrix",
    "projection_matrix_2d",
    "rayleigh_quotient",
    "shepp_logan_2d",
    "sample_observations",
    "shepp_logan_1d",
    "synthetic_contacts",
]
