"""Computed-tomography image reconstruction (Section 1's third motivating
application).

The CT model is ``T = M S``: the detector image ``T`` is the projection
matrix ``M`` applied to the material image ``S``.  Reconstruction inverts the
projection: ``S = M^-1 T``.  "As the accuracy of the detector increases ...
the order of the projection matrix also increases, motivating the need for
scalable matrix inversion."

This module builds a synthetic but physically-shaped projection operator —
each detector reading is a weighted sum of the pixels along one ray across
the image, plus a regularizing identity component to keep the operator well
posed — produces phantoms, and reconstructs them through the pipeline.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..inversion import InversionConfig, MatrixInverter
from ..mapreduce import MapReduceRuntime


def projection_matrix(n_pixels: int, *, rays_per_pixel: int = 4, seed: int = 0) -> np.ndarray:
    """A synthetic ``n_pixels x n_pixels`` projection operator.

    Row *i* integrates the image along a pseudo-random ray: a contiguous run
    of pixels with smoothly varying weights.  A 1.0 diagonal keeps the
    operator invertible (equivalently: each detector sees its own pixel plus
    the ray through it).
    """
    rng = np.random.default_rng(seed)
    m = np.eye(n_pixels)
    for i in range(n_pixels):
        for _ in range(rays_per_pixel):
            start = rng.integers(0, n_pixels)
            length = int(rng.integers(2, max(3, n_pixels // 8)))
            stop = min(start + length, n_pixels)
            weights = rng.uniform(0.05, 0.3, stop - start)
            m[i, start:stop] += weights
    return m


def shepp_logan_1d(n_pixels: int) -> np.ndarray:
    """A 1-D phantom: overlapping box/ellipse densities on a flat background
    (a line through the classic Shepp-Logan head phantom)."""
    x = np.linspace(-1.0, 1.0, n_pixels)
    image = np.full(n_pixels, 0.1)
    for center, width, density in [(-0.4, 0.25, 1.0), (0.1, 0.4, 0.6), (0.55, 0.15, 1.4)]:
        image[np.abs(x - center) < width] += density
    return image


def shepp_logan_2d(height: int, width: int) -> np.ndarray:
    """A 2-D phantom: elliptical densities on a flat background (a small
    Shepp-Logan-style head section), returned as ``height x width``."""
    ys = np.linspace(-1.0, 1.0, height)[:, None]
    xs = np.linspace(-1.0, 1.0, width)[None, :]
    image = np.full((height, width), 0.1)
    for cy, cx, ry, rx, density in [
        (0.0, 0.0, 0.85, 0.65, 0.8),
        (-0.2, 0.15, 0.35, 0.25, 0.7),
        (0.25, -0.2, 0.2, 0.3, 1.1),
        (0.4, 0.35, 0.12, 0.12, 1.5),
    ]:
        mask = ((ys - cy) / ry) ** 2 + ((xs - cx) / rx) ** 2 < 1.0
        image[mask] += density
    return image


def projection_matrix_2d(
    height: int, width: int, *, rays_per_pixel: int = 3, seed: int = 0
) -> np.ndarray:
    """A projection operator over a flattened 2-D image.

    Each detector reading integrates along a short horizontal, vertical, or
    diagonal ray through the image plus its own pixel — the operator order
    is ``height * width``, which is why "as the accuracy of the detector
    increases ... the order of the projection matrix also increases"
    (Section 1's scaling motivation).
    """
    n = height * width
    rng = np.random.default_rng(seed)
    m = np.eye(n)
    directions = [(0, 1), (1, 0), (1, 1), (1, -1)]
    for i in range(n):
        y0, x0 = divmod(i, width)
        for _ in range(rays_per_pixel):
            dy, dx = directions[rng.integers(len(directions))]
            length = int(rng.integers(2, max(3, min(height, width) // 2)))
            weight = rng.uniform(0.05, 0.25)
            y, x = y0, x0
            for _ in range(length):
                y, x = y + dy, x + dx
                if not (0 <= y < height and 0 <= x < width):
                    break
                m[i, y * width + x] += weight
    return m


@dataclass
class ReconstructionReport:
    """Quality of one reconstruction."""

    reconstructed: np.ndarray
    original: np.ndarray
    max_abs_error: float
    relative_error: float


class CTReconstructor:
    """Invert the projection operator once; reconstruct any detector image."""

    def __init__(
        self,
        projection: np.ndarray,
        config: InversionConfig | None = None,
        runtime: MapReduceRuntime | None = None,
    ) -> None:
        self.projection = np.asarray(projection, dtype=np.float64)
        inverter = MatrixInverter(config=config, runtime=runtime)
        try:
            self.inverse = inverter.invert(self.projection).inverse
        finally:
            inverter.close()

    def scan(self, image: np.ndarray, noise: float = 0.0, seed: int = 0) -> np.ndarray:
        """Simulate the detector: ``T = M S`` (+ optional detector noise)."""
        t = self.projection @ np.asarray(image, dtype=np.float64)
        if noise > 0:
            t = t + np.random.default_rng(seed).normal(0.0, noise, t.shape)
        return t

    def reconstruct(self, detector_image: np.ndarray, original: np.ndarray | None = None) -> ReconstructionReport:
        """``S = M^-1 T``."""
        s = self.inverse @ np.asarray(detector_image, dtype=np.float64)
        if original is None:
            original = np.full_like(s, np.nan)
            return ReconstructionReport(s, original, float("nan"), float("nan"))
        original = np.asarray(original, dtype=np.float64)
        err = np.abs(s - original)
        rel = float(np.linalg.norm(s - original) / np.linalg.norm(original))
        return ReconstructionReport(s, original, float(err.max()), rel)
