"""Inversion versus iterative solving — when does the explicit inverse pay?

Section 1: "In some cases, it may be possible to avoid matrix inversion by
using alternate numerical methods ... but it is clear that a scalable and
efficient matrix inversion technique would be highly useful."  Section 3
names the alternative concretely: MADlib's conjugate gradient.

This application makes the trade-off quantitative for a given SPD operator:
it runs CG on sample right-hand sides to measure the iteration count, prices
both strategies in multiplication counts (CG: ``2 k n^2`` per solve;
inversion: ``n^3`` once + ``n^2`` per solve), reports the crossover, and —
on request — executes both paths and cross-checks the solutions.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..inversion import InversionConfig, MatrixInverter
from ..linalg.cg import (
    CGResult,
    cg_flops_per_solve,
    conjugate_gradient,
    inversion_flops,
    solve_strategy_crossover,
)
from ..mapreduce import MapReduceRuntime


@dataclass
class StrategyComparison:
    n: int
    cg_iterations: int
    crossover_rhs: int
    cg_flops_per_rhs: float
    inversion_setup_flops: float

    def cheaper_strategy(self, num_rhs: int) -> str:
        cg_total = self.cg_flops_per_rhs * num_rhs
        inv_total = inversion_flops(self.n, num_rhs)
        return "inversion" if inv_total < cg_total else "cg"


def compare_strategies(
    a: np.ndarray,
    *,
    sample_rhs: int = 3,
    tol: float = 1e-10,
    seed: int = 0,
) -> StrategyComparison:
    """Measure CG's iteration count on ``a`` and price both strategies."""
    a = np.asarray(a, dtype=np.float64)
    n = a.shape[0]
    rng = np.random.default_rng(seed)
    iterations = 0
    for _ in range(sample_rhs):
        res = conjugate_gradient(a, rng.standard_normal(n), tol=tol)
        iterations = max(iterations, res.iterations)
    return StrategyComparison(
        n=n,
        cg_iterations=iterations,
        crossover_rhs=solve_strategy_crossover(n, iterations),
        cg_flops_per_rhs=cg_flops_per_solve(n, iterations),
        inversion_setup_flops=float(n) ** 3,
    )


@dataclass
class ExecutedComparison:
    comparison: StrategyComparison
    max_solution_difference: float
    cg_results: list[CGResult]


def execute_both(
    a: np.ndarray,
    rhs: np.ndarray,
    *,
    config: InversionConfig | None = None,
    runtime: MapReduceRuntime | None = None,
    tol: float = 1e-12,
) -> ExecutedComparison:
    """Solve every column of ``rhs`` with both strategies and cross-check.

    The inversion path runs on the MapReduce pipeline; CG runs per column.
    """
    a = np.asarray(a, dtype=np.float64)
    rhs = np.asarray(rhs, dtype=np.float64)
    if rhs.ndim == 1:
        rhs = rhs[:, None]
    inverter = MatrixInverter(config=config, runtime=runtime)
    try:
        inverse = inverter.invert(a).inverse
    finally:
        inverter.close()
    x_inv = inverse @ rhs
    cg_results = [
        conjugate_gradient(a, rhs[:, j], tol=tol) for j in range(rhs.shape[1])
    ]
    x_cg = np.column_stack([r.x for r in cg_results])
    return ExecutedComparison(
        comparison=compare_strategies(a, tol=tol),
        max_solution_difference=float(np.max(np.abs(x_inv - x_cg))),
        cg_results=cg_results,
    )
