"""Linear-system solving via the distributed inverse (Section 1's first
motivating application: ``Ax = b  =>  x = A^-1 b``).

The solver inverts once and then serves any number of right-hand sides with a
matrix-vector product — the usage pattern that justifies paying for an
explicit inverse (CT reconstruction, repeated solves against a fixed
operator).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..inversion import InversionConfig, InversionResult, MatrixInverter
from ..mapreduce import MapReduceRuntime


@dataclass
class SolveReport:
    """One solve's outcome and quality metrics."""

    x: np.ndarray
    residual_norm: float  # ||A x - b|| / ||b||


class LinearSolver:
    """Solve ``A x = b`` for many ``b`` against one inverted operator."""

    def __init__(
        self,
        a: np.ndarray,
        config: InversionConfig | None = None,
        runtime: MapReduceRuntime | None = None,
    ) -> None:
        self.a = np.asarray(a, dtype=np.float64)
        inverter = MatrixInverter(config=config, runtime=runtime)
        try:
            self.result: InversionResult = inverter.invert(self.a)
        finally:
            inverter.close()

    @property
    def inverse(self) -> np.ndarray:
        return self.result.inverse

    def solve(self, b: np.ndarray) -> SolveReport:
        """Solve for one right-hand side (vector or matrix of columns)."""
        b = np.asarray(b, dtype=np.float64)
        if b.shape[0] != self.a.shape[0]:
            raise ValueError(
                f"rhs has {b.shape[0]} rows, matrix is {self.a.shape[0]}"
            )
        x = self.inverse @ b
        denom = float(np.linalg.norm(b))
        resid = float(np.linalg.norm(self.a @ x - b))
        return SolveReport(x=x, residual_norm=resid / denom if denom else resid)

    def solve_many(self, bs: np.ndarray) -> list[SolveReport]:
        """Solve a batch of right-hand sides (columns of ``bs``)."""
        return [self.solve(bs[:, j]) for j in range(bs.shape[1])]
