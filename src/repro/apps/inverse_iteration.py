"""Eigenpair refinement by inverse iteration (Section 1's second motivating
application).

Given an approximate eigenvalue ``mu`` and start vector ``v0``, iterate

    v_{k+1} = (A - mu I)^-1 v_k / || (A - mu I)^-1 v_k ||

with the shifted inverse computed *once* through the MapReduce pipeline; the
Rayleigh quotient ``lambda = v^T A v / v^T v`` tracks the current eigenvalue
estimate, exactly the formulation in the paper's introduction.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..inversion import InversionConfig, MatrixInverter
from ..mapreduce import MapReduceRuntime


@dataclass
class EigenResult:
    """Converged (or best-effort) eigenpair."""

    eigenvalue: float
    eigenvector: np.ndarray
    iterations: int
    converged: bool
    history: list[float] = field(default_factory=list)

    def residual(self, a: np.ndarray) -> float:
        """``||A v - lambda v||`` for the returned pair."""
        return float(
            np.linalg.norm(a @ self.eigenvector - self.eigenvalue * self.eigenvector)
        )


def rayleigh_quotient(a: np.ndarray, v: np.ndarray) -> float:
    """The paper's eigenvalue estimate ``v^T A v / v^T v``."""
    return float(v @ (a @ v) / (v @ v))


def inverse_iteration(
    a: np.ndarray,
    mu: float,
    v0: np.ndarray | None = None,
    *,
    tol: float = 1e-10,
    max_iterations: int = 100,
    config: InversionConfig | None = None,
    runtime: MapReduceRuntime | None = None,
    seed: int = 0,
) -> EigenResult:
    """Refine the eigenpair of ``a`` nearest the shift ``mu``.

    The shifted matrix ``A - mu I`` is inverted once on the MapReduce
    pipeline; each iteration is then a matrix-vector product.
    """
    a = np.asarray(a, dtype=np.float64)
    n = a.shape[0]
    if a.ndim != 2 or a.shape[1] != n:
        raise ValueError(f"matrix must be square, got {a.shape}")
    if v0 is None:
        v = np.random.default_rng(seed).standard_normal(n)
    else:
        v = np.asarray(v0, dtype=np.float64).copy()
    norm = np.linalg.norm(v)
    if norm == 0:
        raise ValueError("start vector must be nonzero")
    v /= norm

    inverter = MatrixInverter(config=config, runtime=runtime)
    try:
        shifted_inverse = inverter.invert(a - mu * np.eye(n)).inverse
    finally:
        inverter.close()

    history: list[float] = []
    lam = rayleigh_quotient(a, v)
    for k in range(1, max_iterations + 1):
        w = shifted_inverse @ v
        w_norm = np.linalg.norm(w)
        if w_norm == 0:
            break
        v_next = w / w_norm
        # Fix sign for convergence measurement (eigenvectors are ±).
        if v_next @ v < 0:
            v_next = -v_next
        lam = rayleigh_quotient(a, v_next)
        history.append(lam)
        if np.linalg.norm(v_next - v) < tol:
            return EigenResult(lam, v_next, k, True, history)
        v = v_next
    return EigenResult(lam, v, max_iterations, False, history)
