"""Distributed inversion from a packed LU factorization (PDGETRI).

Each rank computes its block-cyclic share of ``A^-1`` columns by solving
``A x = P^T e_c`` with the triangular factors.  The factors live distributed
after :func:`~repro.scalapack.pdgetrf.pdgetrf`, so each rank first assembles
the full packed factorization via an allgather — the ``m0 n^2`` read/transfer
of Table 2's ScaLAPACK row, and the reason the paper's comparison turns
against ScaLAPACK as the cluster grows.
"""

from __future__ import annotations

import numpy as np

from ..linalg import permutation
from ..linalg.triangular import blocked_back_substitute, blocked_forward_substitute
from ..mpi.comm import Comm
from ..mpi.grid import owned_indices
from .pdgetrf import LocalLU


def assemble_packed(comm: Comm, fact: LocalLU, n: int, block: int) -> np.ndarray:
    """Allgather the packed LU so every rank holds the full factorization."""
    pieces = comm.allgather((fact.owned_cols, fact.local), tag=2000)
    packed = np.zeros((n, n))
    for cols, local in pieces:
        packed[:, cols] = local
    return packed


def pdgetri_2d(comm: Comm, fact, n: int, block: int) -> np.ndarray:
    """Inversion from a 2D factorization (``LocalLU2D``): allgather the
    packed shares — the same ``m0 n^2`` traffic as the 1D path — then each
    rank solves for a 1D block-cyclic share of ``A^-1``'s columns."""
    pieces = comm.allgather((fact.my_rows, fact.my_cols, fact.local), tag=2500)
    packed = np.zeros((n, n))
    for rows, cols, local in pieces:
        packed[np.ix_(rows, cols)] = local
    lower = np.tril(packed, k=-1) + np.eye(n)
    upper = np.triu(packed)
    owned = owned_indices(comm.rank, n, block, comm.size)
    if owned.size == 0:
        return np.zeros((n, 0))
    rhs = np.zeros((n, owned.size))
    inv_perm = permutation.invert(fact.perm)
    rhs[inv_perm[owned], np.arange(owned.size)] = 1.0
    y = blocked_forward_substitute(lower, rhs, unit_diagonal=True)
    return blocked_back_substitute(upper, y)


def pdgetri(comm: Comm, fact: LocalLU, n: int, block: int) -> np.ndarray:
    """Compute this rank's columns of ``A^-1`` (returned as ``n x n_local``).

    With ``P A = L U``: column ``c`` of ``A^-1`` solves ``A x = e_c``, i.e.
    ``L U x = P e_c`` — forward then back substitution against the packed
    factors, batched over all owned columns.
    """
    packed = assemble_packed(comm, fact, n, block)
    lower = np.tril(packed, k=-1) + np.eye(n)
    upper = np.triu(packed)
    owned = owned_indices(comm.rank, n, block, comm.size)
    if owned.size == 0:
        return np.zeros((n, 0))
    # P e_c has its 1 at row i where perm[i] == c.
    rhs = np.zeros((n, owned.size))
    inv_perm = permutation.invert(fact.perm)
    rhs[inv_perm[owned], np.arange(owned.size)] = 1.0
    y = blocked_forward_substitute(lower, rhs, unit_diagonal=True)
    return blocked_back_substitute(upper, y)
