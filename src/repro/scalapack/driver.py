"""ScaLAPACK-style baseline driver (the Section 7.5 competitor).

Runs PDGETRF + PDGETRI over the threaded MPI world: the root scatters the
block-cyclic column panels, every rank factors and inverts its share, and the
root gathers the inverse.  All message traffic is measured, giving the
empirical side of the Figure 8 comparison; the paper-scale side comes from
the Table 1/2 cost model in ``repro.cluster.costmodel``.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from ..mpi.comm import Comm, TrafficStats, World
from ..mpi.grid import collect_columns, distribute_columns, owned_indices
from .pdgetrf import LocalLU, pdgetrf
from .pdgetri import pdgetri


@dataclass
class ScaLAPACKResult:
    """Outcome of one baseline inversion."""

    inverse: np.ndarray
    traffic: TrafficStats
    nprocs: int
    block: int
    wall_seconds: float

    def residual(self, a: np.ndarray) -> float:
        n = a.shape[0]
        return float(np.max(np.abs(np.eye(n) - a @ self.inverse)))


@dataclass
class ScaLAPACKFactors:
    """Assembled ``P A = L U`` from the distributed factorization."""

    lower: np.ndarray
    upper: np.ndarray
    perm: np.ndarray
    traffic: TrafficStats


class ScaLAPACKInverter:
    """Dense inversion over the MPI substrate.

    Parameters mirror the paper's setup: ``nprocs`` processes and a
    block-cyclic ``block`` width (128 in Section 7.5; smaller for scaled-down
    runs so several cycles occur).
    """

    def __init__(
        self,
        nprocs: int = 4,
        block: int = 32,
        timeout: float = 120.0,
        layout: str = "1d",
    ) -> None:
        if nprocs < 1:
            raise ValueError("nprocs must be >= 1")
        if block < 1:
            raise ValueError("block must be >= 1")
        if layout not in ("1d", "2d"):
            raise ValueError(f"layout must be '1d' or '2d', got {layout!r}")
        self.nprocs = nprocs
        self.block = block
        self.timeout = timeout
        self.layout = layout

    def invert(self, a: np.ndarray) -> ScaLAPACKResult:
        a = np.asarray(a, dtype=np.float64)
        if a.ndim != 2 or a.shape[0] != a.shape[1]:
            raise ValueError(f"matrix must be square, got {a.shape}")
        if self.layout == "2d":
            return self._invert_2d(a)
        n = a.shape[0]
        world = World(self.nprocs, timeout=self.timeout)
        start = time.perf_counter()

        def spmd(comm: Comm) -> np.ndarray | None:
            if comm.rank == 0:
                panels = distribute_columns(a, self.block, comm.size)
            else:
                panels = None
            local = comm.scatter(panels, root=0)
            fact = pdgetrf(comm, local, n, self.block)
            inv_local = pdgetri(comm, fact, n, self.block)
            gathered = comm.gather(inv_local, root=0)
            if comm.rank == 0:
                return collect_columns(gathered, n, self.block, comm.size)
            return None

        results = world.run(spmd)
        return ScaLAPACKResult(
            inverse=results[0],
            traffic=world.traffic,
            nprocs=self.nprocs,
            block=self.block,
            wall_seconds=time.perf_counter() - start,
        )

    def lu(self, a: np.ndarray) -> ScaLAPACKFactors:
        """Run only PDGETRF and assemble the factors (for validation).

        With ``layout='2d'`` the factorization runs on the true
        ``f1 x f2`` block-cyclic grid (the paper's configuration)."""
        if self.layout == "2d":
            return self._lu_2d(a)
        a = np.asarray(a, dtype=np.float64)
        n = a.shape[0]
        world = World(self.nprocs, timeout=self.timeout)

        def spmd(comm: Comm) -> LocalLU | None:
            if comm.rank == 0:
                panels = distribute_columns(a, self.block, comm.size)
            else:
                panels = None
            local = comm.scatter(panels, root=0)
            fact = pdgetrf(comm, local, n, self.block)
            gathered = comm.gather((fact.owned_cols, fact.local), root=0)
            if comm.rank == 0:
                packed = np.zeros((n, n))
                for cols, loc in gathered:
                    packed[:, cols] = loc
                return packed, fact.perm
            return None

        packed, perm = world.run(spmd)[0]
        lower = np.tril(packed, k=-1) + np.eye(n)
        upper = np.triu(packed)
        return ScaLAPACKFactors(
            lower=lower, upper=upper, perm=perm, traffic=world.traffic
        )


    def _invert_2d(self, a: np.ndarray) -> ScaLAPACKResult:
        from ..linalg.blockwrap import factor_grid
        from ..mpi.grid import ProcessGrid, owned_indices
        from .pdgetrf2d import pdgetrf_2d
        from .pdgetri import pdgetri_2d

        n = a.shape[0]
        f1, f2 = factor_grid(self.nprocs)
        grid = ProcessGrid(f1, f2)
        world = World(self.nprocs, timeout=self.timeout)
        start = time.perf_counter()

        def spmd(comm: Comm) -> np.ndarray | None:
            pr, pc = grid.coords(comm.rank)
            rows = owned_indices(pr, n, self.block, f1)
            cols = owned_indices(pc, n, self.block, f2)
            fact = pdgetrf_2d(comm, a[np.ix_(rows, cols)], n, self.block, grid)
            inv_local = pdgetri_2d(comm, fact, n, self.block)
            gathered = comm.gather(inv_local, root=0)
            if comm.rank == 0:
                return collect_columns(gathered, n, self.block, comm.size)
            return None

        results = world.run(spmd)
        return ScaLAPACKResult(
            inverse=results[0],
            traffic=world.traffic,
            nprocs=self.nprocs,
            block=self.block,
            wall_seconds=time.perf_counter() - start,
        )

    def _lu_2d(self, a: np.ndarray) -> ScaLAPACKFactors:
        from ..linalg.blockwrap import factor_grid
        from ..mpi.grid import ProcessGrid, owned_indices
        from .pdgetrf2d import assemble_2d, pdgetrf_2d

        a = np.asarray(a, dtype=np.float64)
        n = a.shape[0]
        f1, f2 = factor_grid(self.nprocs)
        grid = ProcessGrid(f1, f2)
        world = World(self.nprocs, timeout=self.timeout)

        def spmd(comm: Comm):
            pr, pc = grid.coords(comm.rank)
            rows = owned_indices(pr, n, self.block, f1)
            cols = owned_indices(pc, n, self.block, f2)
            # In real ScaLAPACK the data starts distributed; the driver hands
            # each rank its share directly (ingestion traffic is accounted in
            # the 1D path; the 2D path measures the factorization's own
            # communication).
            return pdgetrf_2d(comm, a[np.ix_(rows, cols)], n, self.block, grid)

        results = world.run(spmd)
        packed, perm = assemble_2d(results, n)
        lower = np.tril(packed, k=-1) + np.eye(n)
        upper = np.triu(packed)
        return ScaLAPACKFactors(
            lower=lower, upper=upper, perm=perm, traffic=world.traffic
        )


def scalapack_invert(
    a: np.ndarray, nprocs: int = 4, block: int = 32
) -> ScaLAPACKResult:
    """One-call convenience wrapper."""
    return ScaLAPACKInverter(nprocs=nprocs, block=block).invert(a)
