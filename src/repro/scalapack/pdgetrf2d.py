"""PDGETRF on a true 2D block-cyclic process grid — ScaLAPACK's actual data
layout (Section 7.5 runs an ``f1 x f2`` grid with 128-wide blocks).

Element ``(i, j)`` lives on grid rank ``(i-block-cycle mod f1,
j-block-cycle mod f2)``.  The factorization is right-looking with full
partial pivoting, and every communication pattern of the real routine is
present and measured:

* per-column pivot search: candidates gathered within the owning process
  *column*, winner broadcast to the whole grid;
* row swaps: segment exchanges between the two owning process rows, in
  every process column;
* panel broadcast along process rows; U block-row broadcast down process
  columns; local GEMM trailing updates.

The earlier 1D variant (``pdgetrf``) remains as the simpler reference; this
module exists to validate that the measured traffic and synchronization
structure of the baseline match the real grid layout the paper used.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..linalg.lu import SingularMatrixError
from ..mpi.comm import Comm
from ..mpi.grid import ProcessGrid, cyclic_owner, owned_indices


@dataclass
class LocalLU2D:
    """One rank's share of the 2D factorization."""

    local: np.ndarray  # packed LU restricted to (my_rows x my_cols)
    my_rows: np.ndarray
    my_cols: np.ndarray
    perm: np.ndarray  # full pivot array S (replicated on every rank)


class _GridRank:
    """Per-rank helper bundling index arithmetic for one factorization."""

    def __init__(self, comm: Comm, grid: ProcessGrid, n: int, block: int) -> None:
        self.comm = comm
        self.grid = grid
        self.n = n
        self.block = block
        self.prow, self.pcol = grid.coords(comm.rank)
        self.my_rows = owned_indices(self.prow, n, block, grid.rows)
        self.my_cols = owned_indices(self.pcol, n, block, grid.cols)
        self.row_pos = {int(g): i for i, g in enumerate(self.my_rows)}
        self.col_pos = {int(g): i for i, g in enumerate(self.my_cols)}

    def row_owner(self, g: int) -> int:
        return cyclic_owner(g, self.block, self.grid.rows)

    def col_owner(self, g: int) -> int:
        return cyclic_owner(g, self.block, self.grid.cols)

    def cols_at_or_after(self, g: int) -> np.ndarray:
        """Local indices of owned columns with global index >= g."""
        return np.flatnonzero(self.my_cols >= g)

    def rows_after(self, g: int) -> np.ndarray:
        """Local indices of owned rows with global index > g."""
        return np.flatnonzero(self.my_rows > g)


def _swap_rows(ctx: _GridRank, local: np.ndarray, r1: int, r2: int, tag: int) -> None:
    """Exchange global rows r1 and r2 across the grid (this rank's part)."""
    if r1 == r2:
        return
    o1, o2 = ctx.row_owner(r1), ctx.row_owner(r2)
    if ctx.prow not in (o1, o2):
        return
    if o1 == o2:
        i1, i2 = ctx.row_pos[r1], ctx.row_pos[r2]
        local[[i1, i2], :] = local[[i2, i1], :]
        return
    mine, other_row, other_prow = (
        (r1, r2, o2) if ctx.prow == o1 else (r2, r1, o1)
    )
    partner = ctx.grid.rank(other_prow, ctx.pcol)
    idx = ctx.row_pos[mine]
    ctx.comm.send(local[idx].copy(), partner, tag)
    local[idx] = ctx.comm.recv(partner, tag)


def pdgetrf_2d(
    comm: Comm, local: np.ndarray, n: int, block: int, grid: ProcessGrid
) -> LocalLU2D:
    """Factor the 2D-distributed matrix in place: ``P A = L U``."""
    if grid.size != comm.size:
        raise ValueError(f"grid {grid.rows}x{grid.cols} != world size {comm.size}")
    ctx = _GridRank(comm, grid, n, block)
    if local.shape != (ctx.my_rows.size, ctx.my_cols.size):
        raise ValueError(
            f"rank {comm.rank}: local shape {local.shape} != "
            f"({ctx.my_rows.size}, {ctx.my_cols.size})"
        )
    local = local.astype(np.float64, copy=True)
    swaps: list[tuple[int, int]] = []
    num_panels = -(-n // block)

    for p in range(num_panels):
        k0 = p * block
        w = min(block, n - k0)
        pc = ctx.col_owner(k0)  # process column owning the whole panel
        in_pc = ctx.pcol == pc
        panel_cols = (
            np.array([ctx.col_pos[k0 + jj] for jj in range(w)]) if in_pc else None
        )

        # ---- panel factorization (process column pc + global swaps) -------
        for jj in range(w):
            j = k0 + jj
            tag = 10_000 + 20 * (p * block + jj)
            # Pivot search: candidates from every rank in column pc.
            if in_pc:
                rows = ctx.rows_after(j - 1)  # global rows >= j
                if rows.size:
                    vals = np.abs(local[rows, panel_cols[jj]])
                    best = int(np.argmax(vals))
                    cand = (float(vals[best]), int(ctx.my_rows[rows[best]]))
                else:
                    cand = (-1.0, -1)
                root = ctx.grid.rank(0, pc)
                gathered = _gather_among(
                    comm, ctx.grid.col_members(pc), cand, root, tag
                )
                if comm.rank == root:
                    val, piv = max(gathered)
                    if val <= 0.0:
                        piv = -1
                else:
                    piv = None
            else:
                root = ctx.grid.rank(0, pc)
                piv = None
            piv = comm.bcast(piv, root=root, tag=tag + 1)
            if piv < 0:
                raise SingularMatrixError(f"zero pivot column at step {j}")
            swaps.append((j, piv))
            _swap_rows(ctx, local, j, piv, tag + 2)

            # Scale multipliers and update the rest of the panel (column pc).
            if in_pc:
                prow_j = ctx.row_owner(j)
                src = ctx.grid.rank(prow_j, pc)
                if comm.rank == src:
                    li = ctx.row_pos[j]
                    pivot_val = local[li, panel_cols[jj]]
                    row_seg = local[li, panel_cols[jj + 1 :]].copy()
                    payload = (pivot_val, row_seg)
                else:
                    payload = None
                pivot_val, row_seg = _bcast_among(
                    comm, ctx.grid.col_members(pc), payload, src, tag + 3
                )
                if pivot_val == 0.0:
                    raise SingularMatrixError(f"zero pivot at step {j}")
                below = ctx.rows_after(j)
                if below.size:
                    local[below, panel_cols[jj]] /= pivot_val
                    if jj + 1 < w:
                        local[np.ix_(below, panel_cols[jj + 1 :])] -= np.outer(
                            local[below, panel_cols[jj]], row_seg
                        )

        # ---- broadcast the factored panel along each process row ----------
        tag = 50_000 + 100 * p
        if in_pc:
            panel_seg = local[:, panel_cols].copy()
        else:
            panel_seg = None
        panel_seg = _bcast_among(
            comm,
            ctx.grid.row_members(ctx.prow),
            panel_seg,
            ctx.grid.rank(ctx.prow, pc),
            tag,
        )

        # ---- U block row: solve L11 U12 = A12 on process row pr_k ----------
        pr_k = ctx.row_owner(k0)
        trailing = ctx.cols_at_or_after(k0 + w)
        if ctx.prow == pr_k:
            pivot_rows = np.array([ctx.row_pos[k0 + jj] for jj in range(w)])
            l11 = np.tril(panel_seg[pivot_rows], k=-1) + np.eye(w)
            if trailing.size:
                a12 = local[np.ix_(pivot_rows, trailing)]
                u12 = np.linalg.solve(l11, a12)
                local[np.ix_(pivot_rows, trailing)] = u12
            else:
                u12 = np.zeros((w, 0))
        else:
            u12 = None
        u12 = _bcast_among(
            comm,
            ctx.grid.col_members(ctx.pcol),
            u12,
            ctx.grid.rank(pr_k, ctx.pcol),
            tag + 1,
        )

        # ---- trailing GEMM update -----------------------------------------
        below = ctx.rows_after(k0 + w - 1)
        if below.size and trailing.size:
            l21 = panel_seg[below]
            local[np.ix_(below, trailing)] -= l21 @ u12

    perm = np.arange(n, dtype=np.int64)
    for r1, r2 in swaps:
        perm[[r1, r2]] = perm[[r2, r1]]
    return LocalLU2D(local=local, my_rows=ctx.my_rows, my_cols=ctx.my_cols, perm=perm)


def _gather_among(comm: Comm, members: list[int], value, root: int, tag: int):
    """Gather ``value`` from ``members`` (a sub-communicator) to ``root``."""
    if comm.rank == root:
        out = []
        for m in members:
            out.append(value if m == root else comm.recv(m, tag))
        return out
    comm.send(value, root, tag)
    return None


def _bcast_among(comm: Comm, members: list[int], value, root: int, tag: int):
    """Broadcast ``value`` from ``root`` to ``members`` (linear fan-out —
    within a grid row/column the member count is f1 or f2, i.e. small)."""
    if comm.rank == root:
        for m in members:
            if m != root:
                comm.send(value, m, tag)
        return value
    return comm.recv(root, tag)


def assemble_2d(results: list[LocalLU2D], n: int) -> tuple[np.ndarray, np.ndarray]:
    """Compose the full packed LU (and perm) from every rank's share."""
    packed = np.zeros((n, n))
    for res in results:
        packed[np.ix_(res.my_rows, res.my_cols)] = res.local
    return packed, results[0].perm
