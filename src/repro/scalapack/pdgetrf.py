"""Distributed LU factorization with partial pivoting (the baseline's
PDGETRF).

The matrix is distributed 1D block-cyclically by *columns*: process ``p``
owns column blocks ``p, p + nprocs, ...`` of width ``block``.  The
factorization is right-looking and panel-synchronized, exactly the execution
pattern of ScaLAPACK's PDGETRF (Section 7.5 runs it with 128-wide blocks on
an f1 x f2 grid; a 1D column layout keeps the implementation tractable while
preserving the properties the paper's comparison rests on — panel-step
synchronization and O(m0 n^2) broadcast traffic, cf. Table 1's ScaLAPACK
row).

Per panel ``k``:

1. the owning process factors panel columns with partial pivoting over the
   trailing rows (it owns entire columns, so the pivot search is local);
2. pivot swaps and the factored panel are broadcast (binomial tree);
3. every process applies the row swaps to its local columns, solves the
   unit-lower triangular system for its block row of U, and applies the
   rank-``b`` GEMM update to its trailing columns.

All communication is measured by the :class:`~repro.mpi.comm.World` traffic
counters — the quantity Figure 8's argument is about.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..linalg.lu import SingularMatrixError
from ..mpi.comm import Comm
from ..mpi.grid import cyclic_owner, owned_indices


@dataclass
class LocalLU:
    """One rank's share of the packed factorization."""

    local: np.ndarray  # packed LU columns owned by this rank
    owned_cols: np.ndarray  # global indices of those columns
    perm: np.ndarray  # the full pivot permutation S (replicated)


def _factor_panel(panel: np.ndarray, row0: int) -> tuple[np.ndarray, list[tuple[int, int]]]:
    """Pivoted LU of one panel: full column height, eliminating from ``row0``.

    Returns the updated panel and the swap list (global row pairs).
    """
    n, b = panel.shape
    swaps: list[tuple[int, int]] = []
    for j in range(b):
        row = row0 + j
        if row >= n:
            break
        rel = int(np.argmax(np.abs(panel[row:, j])))
        piv = row + rel
        if piv != row:
            panel[[row, piv], :] = panel[[piv, row], :]
            swaps.append((row, piv))
        pivot_val = panel[row, j]
        if pivot_val == 0.0:
            raise SingularMatrixError(f"zero pivot in panel column {row}")
        if row + 1 < n:
            panel[row + 1 :, j] /= pivot_val
            if j + 1 < b:
                panel[row + 1 :, j + 1 :] -= np.outer(
                    panel[row + 1 :, j], panel[row, j + 1 :]
                )
    return panel, swaps


def pdgetrf(comm: Comm, local: np.ndarray, n: int, block: int) -> LocalLU:
    """Factor the distributed matrix in place; every rank returns its share.

    ``local`` is this rank's column panel (``n x n_local``, block-cyclic).
    """
    p, rank = comm.size, comm.rank
    owned = owned_indices(rank, n, block, p)
    if local.shape != (n, owned.size):
        raise ValueError(
            f"rank {rank}: local shape {local.shape} != ({n}, {owned.size})"
        )
    local = local.astype(np.float64, copy=True)
    all_swaps: list[tuple[int, int]] = []

    num_panels = -(-n // block)
    for k in range(num_panels):
        col0 = k * block
        width = min(block, n - col0)
        owner = cyclic_owner(col0, block, p)
        # Local column range of the panel on its owner.
        if rank == owner:
            lstart = int(np.searchsorted(owned, col0))
            panel = local[:, lstart : lstart + width].copy()
            panel, swaps = _factor_panel(panel, col0)
            local[:, lstart : lstart + width] = panel
            payload = (panel, swaps)
        else:
            payload = None
        panel, swaps = comm.bcast(payload, root=owner, tag=1000 + 7 * k)
        all_swaps.extend(swaps)

        # Apply the panel's row swaps to all *other* local columns.
        if swaps:
            mask = (owned < col0) | (owned >= col0 + width)
            idx = np.flatnonzero(mask)
            if idx.size:
                sub = local[:, idx]
                for r1, r2 in swaps:
                    sub[[r1, r2], :] = sub[[r2, r1], :]
                local[:, idx] = sub

        # Update this rank's trailing columns (global col > panel).
        trailing = np.flatnonzero(owned >= col0 + width)
        if trailing.size:
            l_diag = panel[col0 : col0 + width, :]  # unit lower within panel
            ldu = np.tril(l_diag, k=-1) + np.eye(width)
            a_top = local[col0 : col0 + width, trailing]
            # Solve unit-lower L11 * U12 = A12 (small; forward substitution).
            u12 = np.linalg.solve(ldu, a_top) if width > 1 else a_top / 1.0
            local[col0 : col0 + width, trailing] = u12
            if col0 + width < n:
                l21 = panel[col0 + width :, :]
                local[col0 + width :, trailing] -= l21 @ u12

    # Materialize the permutation array S from the swap sequence.
    perm = np.arange(n, dtype=np.int64)
    for r1, r2 in all_swaps:
        perm[[r1, r2]] = perm[[r2, r1]]
    return LocalLU(local=local, owned_cols=owned, perm=perm)
