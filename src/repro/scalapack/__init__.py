"""ScaLAPACK-style MPI baseline (Section 7.5): distributed block-cyclic LU
(PDGETRF) and inversion (PDGETRI) with measured communication traffic."""

from .driver import (
    ScaLAPACKFactors,
    ScaLAPACKInverter,
    ScaLAPACKResult,
    scalapack_invert,
)
from .pdgetrf import LocalLU, pdgetrf
from .pdgetrf2d import LocalLU2D, assemble_2d, pdgetrf_2d
from .pdgetri import assemble_packed, pdgetri

__all__ = [
    "LocalLU",
    "LocalLU2D",
    "assemble_2d",
    "pdgetrf_2d",
    "ScaLAPACKFactors",
    "ScaLAPACKInverter",
    "ScaLAPACKResult",
    "assemble_packed",
    "pdgetrf",
    "pdgetri",
    "scalapack_invert",
]
