"""Process grids and block-cyclic index maps (ScaLAPACK's data layout).

Section 7.5 configures ScaLAPACK with an ``f1 x f2`` process grid and
128 x 128 blocks assigned cyclically — the classic 2D block-cyclic layout.
This module provides the index arithmetic for 1D and 2D block-cyclic
distributions plus the grid <-> rank mapping, all pure functions so both the
baseline implementation and its tests share one source of truth.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


def cyclic_owner(global_index: int, block: int, nprocs: int) -> int:
    """Which process owns global index ``g`` under block-cyclic distribution."""
    return (global_index // block) % nprocs


def local_index(global_index: int, block: int, nprocs: int) -> int:
    """Position of global index ``g`` within its owner's local storage."""
    return (global_index // (block * nprocs)) * block + global_index % block


def owned_indices(proc: int, n: int, block: int, nprocs: int) -> np.ndarray:
    """All global indices in ``[0, n)`` owned by ``proc``, ascending."""
    if not 0 <= proc < nprocs:
        raise ValueError(f"proc {proc} outside [0, {nprocs})")
    out = []
    start = proc * block
    stride = block * nprocs
    while start < n:
        out.extend(range(start, min(start + block, n)))
        start += stride
    return np.asarray(out, dtype=np.int64)


def local_count(proc: int, n: int, block: int, nprocs: int) -> int:
    """Number of global indices owned by ``proc`` (no enumeration)."""
    full_cycles, rem = divmod(n, block * nprocs)
    count = full_cycles * block
    rem_start = proc * block
    count += min(max(rem - rem_start, 0), block)
    return count


@dataclass(frozen=True)
class ProcessGrid:
    """A 2D ``rows x cols`` process grid with row-major rank numbering."""

    rows: int
    cols: int

    def __post_init__(self) -> None:
        if self.rows < 1 or self.cols < 1:
            raise ValueError("grid dimensions must be >= 1")

    @property
    def size(self) -> int:
        return self.rows * self.cols

    def coords(self, rank: int) -> tuple[int, int]:
        if not 0 <= rank < self.size:
            raise ValueError(f"rank {rank} outside grid of {self.size}")
        return divmod(rank, self.cols)

    def rank(self, row: int, col: int) -> int:
        if not (0 <= row < self.rows and 0 <= col < self.cols):
            raise ValueError(f"coords ({row}, {col}) outside {self.rows}x{self.cols}")
        return row * self.cols + col

    def row_members(self, row: int) -> list[int]:
        return [self.rank(row, c) for c in range(self.cols)]

    def col_members(self, col: int) -> list[int]:
        return [self.rank(r, col) for r in range(self.rows)]

    def block_owner(
        self, i: int, j: int, block: int
    ) -> int:
        """Owner rank of matrix element (i, j) under 2D block-cyclic layout."""
        return self.rank(
            cyclic_owner(i, block, self.rows), cyclic_owner(j, block, self.cols)
        )


def distribute_columns(a: np.ndarray, block: int, nprocs: int) -> list[np.ndarray]:
    """Split a matrix into per-process local column panels (1D block-cyclic)."""
    return [
        np.ascontiguousarray(a[:, owned_indices(p, a.shape[1], block, nprocs)])
        for p in range(nprocs)
    ]


def collect_columns(
    locals_: list[np.ndarray], n_cols: int, block: int, nprocs: int
) -> np.ndarray:
    """Inverse of :func:`distribute_columns`."""
    n_rows = locals_[0].shape[0] if locals_ else 0
    out = np.zeros((n_rows, n_cols))
    for p, local in enumerate(locals_):
        out[:, owned_indices(p, n_cols, block, nprocs)] = local
    return out
