"""A message-passing substrate: MPI-style communicators over threads.

The ScaLAPACK baseline (Section 7.5) needs point-to-point sends/receives and
collectives with *measured traffic*, since the paper's argument against
ScaLAPACK at scale is its network volume (Tables 1-2).  Each rank runs as a
thread executing the same SPMD function; messages travel through per-(src,
dst, tag) queues and every payload's size is accounted to a world-level
:class:`TrafficStats`.

Collectives are built from point-to-point primitives with the standard
algorithms (binomial-tree broadcast/reduce, linear gather/scatter), so their
measured traffic reflects what a real MPI implementation moves.

NumPy's BLAS kernels release the GIL, so the dense per-rank work in the
baseline genuinely runs in parallel.
"""

from __future__ import annotations

import pickle
import queue
import threading
from dataclasses import dataclass, field
from typing import Any, Callable

import numpy as np


class MPIError(RuntimeError):
    pass


class DeadlockError(MPIError):
    """A receive waited longer than the world's timeout."""


def payload_bytes(obj: Any) -> int:
    """Accounting size of a message payload."""
    if isinstance(obj, np.ndarray):
        return obj.nbytes
    if isinstance(obj, (bytes, bytearray)):
        return len(obj)
    try:
        return len(pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL))
    except Exception:
        return 64  # opaque small object


@dataclass
class TrafficStats:
    """World-level communication accounting."""

    bytes_sent: int = 0
    messages: int = 0
    per_rank_sent: dict[int, int] = field(default_factory=dict)
    _lock: threading.Lock = field(default_factory=threading.Lock, repr=False)

    def record(self, src: int, nbytes: int) -> None:
        with self._lock:
            self.bytes_sent += nbytes
            self.messages += 1
            self.per_rank_sent[src] = self.per_rank_sent.get(src, 0) + nbytes


class World:
    """A set of ranks and their mailboxes."""

    def __init__(self, size: int, timeout: float = 60.0) -> None:
        if size < 1:
            raise ValueError("world size must be >= 1")
        self.size = size
        self.timeout = timeout
        self.traffic = TrafficStats()
        self._mailboxes: dict[tuple[int, int, int], queue.SimpleQueue] = {}
        self._mailbox_lock = threading.Lock()
        self._barrier = threading.Barrier(size)

    def _box(self, src: int, dst: int, tag: int) -> queue.SimpleQueue:
        key = (src, dst, tag)
        with self._mailbox_lock:
            box = self._mailboxes.get(key)
            if box is None:
                box = queue.SimpleQueue()
                self._mailboxes[key] = box
            return box

    def run(self, fn: Callable[["Comm"], Any]) -> list[Any]:
        """Run ``fn(comm)`` on every rank; returns per-rank results.

        Any rank's exception aborts the whole world (re-raised on the caller
        with the failing rank noted).
        """
        results: list[Any] = [None] * self.size
        errors: list[tuple[int, Exception]] = []

        def runner(rank: int) -> None:
            try:
                results[rank] = fn(Comm(self, rank))
            except Exception as exc:  # surfaced below
                errors.append((rank, exc))
                self._barrier.abort()

        threads = [
            threading.Thread(target=runner, args=(r,), name=f"mpi-rank-{r}")
            for r in range(self.size)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        if errors:
            rank, exc = errors[0]
            raise MPIError(f"rank {rank} failed: {exc!r}") from exc
        return results


class Comm:
    """One rank's view of the world."""

    def __init__(self, world: World, rank: int) -> None:
        self.world = world
        self.rank = rank
        self.size = world.size

    # -- point to point ---------------------------------------------------------

    def send(self, obj: Any, dest: int, tag: int = 0) -> None:
        if not 0 <= dest < self.size:
            raise MPIError(f"bad destination rank {dest}")
        if dest == self.rank:
            raise MPIError("self-send would deadlock a blocking recv")
        self.world.traffic.record(self.rank, payload_bytes(obj))
        self.world._box(self.rank, dest, tag).put(obj)

    def recv(self, source: int, tag: int = 0) -> Any:
        if not 0 <= source < self.size:
            raise MPIError(f"bad source rank {source}")
        try:
            return self.world._box(source, self.rank, tag).get(
                timeout=self.world.timeout
            )
        except queue.Empty:
            raise DeadlockError(
                f"rank {self.rank} timed out receiving from {source} (tag {tag})"
            ) from None

    # -- collectives -------------------------------------------------------------

    def barrier(self) -> None:
        try:
            self.world._barrier.wait(timeout=self.world.timeout)
        except threading.BrokenBarrierError:
            raise DeadlockError(f"barrier broken at rank {self.rank}") from None

    def bcast(self, obj: Any, root: int = 0, tag: int = 101) -> Any:
        """Binomial-tree broadcast: log2(p) rounds, p-1 messages total."""
        size, rank = self.size, self.rank
        rel = (rank - root) % size
        mask = 1
        while mask < size:
            if rel < mask:
                partner_rel = rel + mask
                if partner_rel < size:
                    self.send(obj, (partner_rel + root) % size, tag + mask)
            elif rel < 2 * mask:
                obj = self.recv((rel - mask + root) % size, tag + mask)
            mask <<= 1
        return obj

    def gather(self, obj: Any, root: int = 0, tag: int = 202) -> list[Any] | None:
        if self.rank == root:
            out: list[Any] = [None] * self.size
            out[root] = obj
            for src in range(self.size):
                if src != root:
                    out[src] = self.recv(src, tag)
            return out
        self.send(obj, root, tag)
        return None

    def scatter(self, objs: list[Any] | None, root: int = 0, tag: int = 303) -> Any:
        if self.rank == root:
            if objs is None or len(objs) != self.size:
                raise MPIError("root must scatter exactly one item per rank")
            for dst in range(self.size):
                if dst != root:
                    self.send(objs[dst], dst, tag)
            return objs[root]
        return self.recv(root, tag)

    def allgather(self, obj: Any, tag: int = 404) -> list[Any]:
        gathered = self.gather(obj, root=0, tag=tag)
        return self.bcast(gathered, root=0, tag=tag + 50)

    def reduce_sum(self, value: Any, root: int = 0, tag: int = 505) -> Any | None:
        """Binomial-tree sum reduction (works for numbers and ndarrays)."""
        size, rank = self.size, self.rank
        rel = (rank - root) % size
        mask = 1
        acc = value
        while mask < size:
            if rel % (2 * mask) == 0:
                partner_rel = rel + mask
                if partner_rel < size:
                    acc = acc + self.recv((partner_rel + root) % size, tag + mask)
            elif rel % (2 * mask) == mask:
                self.send(acc, (rel - mask + root) % size, tag + mask)
                return None
            mask <<= 1
        return acc if rank == root else None

    def allreduce_sum(self, value: Any, tag: int = 606) -> Any:
        acc = self.reduce_sum(value, root=0, tag=tag)
        return self.bcast(acc, root=0, tag=tag + 50)
