"""MPI substrate: threaded SPMD communicators with traffic accounting and
ScaLAPACK-style block-cyclic distribution arithmetic."""

from .comm import Comm, DeadlockError, MPIError, TrafficStats, World, payload_bytes
from .grid import (
    ProcessGrid,
    collect_columns,
    cyclic_owner,
    distribute_columns,
    local_count,
    local_index,
    owned_indices,
)

__all__ = [
    "Comm",
    "DeadlockError",
    "MPIError",
    "ProcessGrid",
    "TrafficStats",
    "World",
    "collect_columns",
    "cyclic_owner",
    "distribute_columns",
    "local_count",
    "local_index",
    "owned_indices",
    "payload_bytes",
]
