"""EC2-style cluster substrate: hardware specs, the Table 1/2 analytic cost
model, and an event-driven simulator that replays executed pipeline traces at
paper scale (the engine behind Figures 6-8 and Sections 7.4/7.5)."""

from .costmodel import (
    CostTerms,
    TimeBreakdown,
    ideal_time,
    ours_inversion_cost,
    ours_lu_cost,
    ours_time,
    ours_total_cost,
    scalapack_inversion_cost,
    scalapack_lu_cost,
    scalapack_time,
    scalapack_total_cost,
    table1_l,
    table2_l,
)
from .nodespec import EC2_LARGE, EC2_MEDIUM, ClusterSpec, NodeSpec
from .simulator import (
    ScaleFactors,
    SimulatedJob,
    SimulationReport,
    simulate_record,
    task_duration,
)

__all__ = [
    "ClusterSpec",
    "CostTerms",
    "EC2_LARGE",
    "EC2_MEDIUM",
    "NodeSpec",
    "ScaleFactors",
    "SimulatedJob",
    "SimulationReport",
    "TimeBreakdown",
    "ideal_time",
    "ours_inversion_cost",
    "ours_lu_cost",
    "ours_time",
    "ours_total_cost",
    "scalapack_inversion_cost",
    "scalapack_lu_cost",
    "scalapack_time",
    "scalapack_total_cost",
    "simulate_record",
    "table1_l",
    "table2_l",
    "task_duration",
]
