"""Hardware descriptions of the paper's EC2 instance types.

Section 7.1: medium instances have 3.7 GB of memory and 1 virtual core with
2 EC2 compute units ("similar to a 2007-era 1.0-1.2 GHz Opteron/Xeon");
Section 7.4 uses large instances with two such cores, and observes inter-node
copy speeds of ~60 MB/s between medium instances and 30-60 MB/s between large
instances.

The effective compute rate is calibrated from the paper's own end-to-end
numbers (M4, order 102400, ~2n^3 floating-point operations, 5 hours on 256
cores => ~5e8 effective flop/s per core — Java + Hadoop overheads included).
"""

from __future__ import annotations

from dataclasses import dataclass, replace


@dataclass(frozen=True)
class NodeSpec:
    """One compute node of the simulated cluster."""

    name: str
    cores: int
    flops_per_core: float  # effective double-precision flop/s
    disk_bandwidth: float  # bytes/s, sustained sequential
    net_bandwidth: float  # bytes/s per-node NIC
    memory_bytes: float

    @property
    def flops(self) -> float:
        return self.cores * self.flops_per_core

    def scaled(self, factor: float) -> "NodeSpec":
        """A hypothetical node with all rates scaled (sensitivity studies)."""
        return replace(
            self,
            flops_per_core=self.flops_per_core * factor,
            disk_bandwidth=self.disk_bandwidth * factor,
            net_bandwidth=self.net_bandwidth * factor,
        )


#: EC2 m1.medium-like instance (Section 7.1).
EC2_MEDIUM = NodeSpec(
    name="ec2-medium",
    cores=1,
    flops_per_core=5.0e8,
    disk_bandwidth=60e6,
    net_bandwidth=60e6,
    memory_bytes=3.7e9,
)

#: EC2 large instance (Section 7.4): two medium-like cores, more memory, and
#: the paper's observed 30-60 MB/s copy speed (we use the midpoint).
EC2_LARGE = NodeSpec(
    name="ec2-large",
    cores=2,
    flops_per_core=5.0e8,
    disk_bandwidth=45e6,
    net_bandwidth=45e6,
    memory_bytes=7.5e9,
)


@dataclass(frozen=True)
class ClusterSpec:
    """A homogeneous cluster plus the Hadoop deployment constants."""

    num_nodes: int
    node: NodeSpec = EC2_MEDIUM
    #: Constant cost of launching one MapReduce job (Section 5 sizes nb so the
    #: master's LU of an nb-order block matches this: nb=3200 => ~22 s).
    job_launch_overhead: float = 22.0
    #: Network latency per collective hop (used by the MPI baseline model).
    message_latency: float = 5e-4

    def __post_init__(self) -> None:
        if self.num_nodes < 1:
            raise ValueError("cluster needs at least one node")

    @property
    def total_cores(self) -> int:
        return self.num_nodes * self.node.cores

    @property
    def total_flops(self) -> float:
        return self.num_nodes * self.node.flops
