"""Event-driven replay of an executed pipeline on a simulated cluster.

An inversion run at laptop scale produces a :class:`PipelineRecord` whose
task traces carry flops and byte counts.  This simulator schedules those real
tasks onto ``m0`` simulated nodes and reports the makespan, which is how the
scaling figures are regenerated: the *structure* (task DAG, per-task work,
barriers, job launches, serial master phases) comes from real execution, and
optional scale factors lift the work to paper-scale orders (flops scale with
``(N/n)^3``, bytes with ``(N/n)^2``).

Scheduling semantics mirror Hadoop's: within a job, map tasks run first on
the free-slot pool (greedy list scheduling), reduces start after the last map
(barrier — Hadoop's shuffle completes at map end here since our engine
materializes map output before reducing), and consecutive jobs are separated
by the launch overhead.  Master phases serialize on the master node.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field

from ..mapreduce.pipeline import MasterPhase, PipelineRecord
from ..mapreduce.types import JobResult, TaskTrace
from .nodespec import ClusterSpec


@dataclass(frozen=True)
class ScaleFactors:
    """Work multipliers for replaying a scaled-down run at a larger order."""

    flops: float = 1.0
    bytes: float = 1.0

    @staticmethod
    def for_order(executed_n: int, simulated_n: int) -> "ScaleFactors":
        """Scale factors for lifting an order-``executed_n`` run to order
        ``simulated_n``: compute is cubic in n, data quadratic."""
        ratio = simulated_n / executed_n
        return ScaleFactors(flops=ratio**3, bytes=ratio**2)


@dataclass
class SimulatedJob:
    name: str
    start: float
    map_done: float
    end: float

    @property
    def duration(self) -> float:
        return self.end - self.start


@dataclass
class SimulationReport:
    """Outcome of one replay."""

    makespan: float
    jobs: list[SimulatedJob] = field(default_factory=list)
    master_seconds: float = 0.0
    launch_seconds: float = 0.0
    busy_node_seconds: float = 0.0
    cluster: ClusterSpec | None = None

    @property
    def utilization(self) -> float:
        """Fraction of node-time spent running tasks."""
        if self.cluster is None or self.makespan == 0:
            return 0.0
        return self.busy_node_seconds / (self.makespan * self.cluster.num_nodes)

    def gantt(self, width: int = 60) -> str:
        """ASCII timeline of the replayed jobs (map phase ``=``, reduce
        phase ``#``), the job-history-UI view of a run."""
        if not self.jobs or self.makespan <= 0:
            return "(no jobs)"
        scale = width / self.makespan
        lines = []
        name_w = max(len(j.name) for j in self.jobs)
        for job in self.jobs:
            start = int(job.start * scale)
            mid = max(int(job.map_done * scale), start + 1)
            end = max(int(job.end * scale), mid)
            bar = " " * start + "=" * (mid - start) + "#" * (end - mid)
            lines.append(f"{job.name:<{name_w}} |{bar:<{width}}|")
        lines.append(f"{'':<{name_w}}  0{'s':<{width - 10}}{self.makespan:8.1f}s")
        return "\n".join(lines)


def task_duration(trace: TaskTrace, cluster: ClusterSpec, scale: ScaleFactors) -> float:
    """Modeled duration of one task on one node of the cluster."""
    node = cluster.node
    compute = trace.flops * scale.flops / node.flops
    disk = (trace.bytes_read + trace.bytes_written) * scale.bytes / node.disk_bandwidth
    net = trace.bytes_shuffled * scale.bytes / node.net_bandwidth
    return compute + disk + net


def master_phase_duration(
    phase: MasterPhase, cluster: ClusterSpec, scale: ScaleFactors
) -> float:
    node = cluster.node
    compute = phase.flops * scale.flops / node.flops
    disk = (phase.bytes_read + phase.bytes_written) * scale.bytes / node.disk_bandwidth
    return compute + disk


def node_speed_factors(num_nodes: int, variance: float, seed: int = 0) -> list[float]:
    """Deterministic per-node speed multipliers modeling EC2 heterogeneity.

    Section 7.4 observes that "the performance variance between different
    large EC2 instances is high, even though the instances are supposed to
    have similar performance".  Factors are log-normal-ish around 1 with the
    given coefficient of variation; variance 0 gives a homogeneous cluster.
    """
    if variance < 0:
        raise ValueError("variance must be >= 0")
    if variance == 0:
        return [1.0] * num_nodes
    import numpy as np

    rng = np.random.default_rng(seed)
    factors = np.exp(rng.normal(0.0, variance, num_nodes))
    return (factors / factors.mean()).tolist()


def _schedule_wave(
    durations: list[float],
    num_nodes: int,
    start: float,
    speeds: list[float] | None = None,
    speculative: bool = False,
) -> tuple[float, float]:
    """Greedy list scheduling of one wave of tasks; returns (finish, busy).

    With per-node ``speeds``, a task assigned to node *k* takes
    ``duration / speeds[k]`` — the earliest-available node still gets the
    next task, which is exactly how Hadoop's slot scheduling absorbs slow
    nodes (fast nodes simply take more tasks).  With ``speculative``, the
    wave's straggling task gets a duplicate attempt on another node and the
    first copy to finish wins (Hadoop's speculative execution).
    """
    if not durations:
        return start, 0.0
    slots = min(num_nodes, max(len(durations), 1))
    heap = [(start, k) for k in range(slots)]
    heapq.heapify(heap)
    busy = 0.0
    ends: list[tuple[float, float, int]] = []  # (end, duration, node)
    for d in durations:
        t, k = heapq.heappop(heap)
        speed = speeds[k] if speeds else 1.0
        end = t + d / speed
        busy += d / speed
        ends.append((end, d, k))
        heapq.heappush(heap, (end, k))
    finish = max(e for e, _, _ in ends)

    if speculative and len(ends) > 1 and slots > 1:
        # Hadoop-style speculation: duplicate the straggling task on the
        # earliest-free other node; the first copy to finish wins.
        ends.sort()
        strag_end, strag_dur, strag_node = ends[-1]
        runner_up = ends[-2][0]
        alt_avail, alt_node = min(
            (t, k) for t, k in heap if k != strag_node
        )
        alt_speed = speeds[alt_node] if speeds else 1.0
        dup_end = max(alt_avail, runner_up) + strag_dur / alt_speed
        if dup_end < strag_end:
            busy += strag_dur / alt_speed
            finish = max(runner_up, dup_end)
    return finish, busy


def _durations_with_retries(
    traces, retries: dict[int, int], cluster: ClusterSpec, scale: ScaleFactors
) -> list[float]:
    """Each failed/duplicate attempt of a task occupies a slot for the task's
    duration before the successful attempt runs — the Section 7.4 scenario
    where a failed mapper "did not restart until one of the other mappers
    finished" and stretched the 5-hour run to 8 hours."""
    durations: list[float] = []
    for i, trace in enumerate(traces):
        d = task_duration(trace, cluster, scale)
        durations.extend([d] * (retries.get(i, 0) + 1))
    return durations


def simulate_record(
    record: PipelineRecord,
    cluster: ClusterSpec,
    scale: ScaleFactors = ScaleFactors(),
    *,
    speed_variance: float = 0.0,
    speed_seed: int = 0,
    speculative: bool = False,
) -> SimulationReport:
    """Replay a pipeline record on the cluster; returns the simulated timeline.

    ``speed_variance`` > 0 replays on a heterogeneous cluster (per-node speed
    factors, Section 7.4's EC2 variance observation); ``speculative`` adds
    duplicate attempts for wave stragglers.
    """
    speeds = node_speed_factors(cluster.num_nodes, speed_variance, speed_seed)
    report = SimulationReport(makespan=0.0, cluster=cluster)
    now = 0.0
    for step in record.steps:
        if isinstance(step, MasterPhase):
            d = master_phase_duration(step, cluster, scale)
            report.master_seconds += d
            now += d
            continue
        job: JobResult = step
        now += cluster.job_launch_overhead
        report.launch_seconds += cluster.job_launch_overhead
        start = now
        map_durations = _durations_with_retries(
            job.map_traces, job.map_retries, cluster, scale
        )
        map_done, busy_m = _schedule_wave(
            map_durations, cluster.num_nodes, now, speeds, speculative
        )
        reduce_durations = _durations_with_retries(
            job.reduce_traces, job.reduce_retries, cluster, scale
        )
        end, busy_r = _schedule_wave(
            reduce_durations, cluster.num_nodes, map_done, speeds, speculative
        )
        report.busy_node_seconds += busy_m + busy_r
        report.jobs.append(
            SimulatedJob(name=job.name, start=start, map_done=map_done, end=end)
        )
        now = end
    report.makespan = now
    return report
