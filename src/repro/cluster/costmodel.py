"""The analytic cost model of Tables 1 and 2, and the running-time models
built on it.

Element-count formulas (n x n matrix, m0 = f1 x f2 nodes):

========================  =========  ============  ============  ========
stage                     write      read          transfer      mults
========================  =========  ============  ============  ========
ours, LU (Table 1)        3/2 n^2    (l+3) n^2     (l+3) n^2     n^3/3
ScaLAPACK, LU             n^2        n^2           2/3 m0 n^2    n^3/3
ours, inversion (Table 2) 2 n^2      l' n^2        (l'+2) n^2    2/3 n^3
ScaLAPACK, inversion      n^2        m0 n^2        m0 n^2        2/3 n^3
========================  =========  ============  ============  ========

with ``l = (m0 + 2 f1 + 2 f2) / 4`` and ``l' = (m0 + f1 + f2) / 2``; adds
equal mults everywhere.

Running-time models combine these with a :class:`ClusterSpec`:

* **ours** — per-node disk/network time + parallel compute + the two serial
  components the paper discusses: job-launch overhead (x number of jobs,
  Figure 6's deviation from ideal) and the master's serial LU of the 2^d
  leaf blocks (the nb trade-off of Section 5);
* **ScaLAPACK** — parallel compute + its Table-1/2 traffic, plus two
  documented degradations the paper attributes its poor scaling to
  (Section 7.5: "transfers large amounts of data over the network ...
  MapReduce scheduling is more effective at keeping the workers busy"):
  a per-panel collective-synchronization term that grows with log(m0), and a
  memory-spill penalty when the distributed factorization no longer fits in
  aggregate RAM (ScaLAPACK keeps everything in memory — Table 1's "data read
  only once" — so exceeding RAM is catastrophic, which is how a 48-hour run
  on 64 medium instances arises for an 80 GB matrix).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..inversion.plan import depth, total_job_count
from ..linalg.blockwrap import factor_grid
from .nodespec import ClusterSpec

BYTES_PER_ELEMENT = 8
#: ScaLAPACK's working set per matrix element: factorization and inversion
#: run (mostly) in place, plus panel workspace and communication buffers
#: (~1.5 copies of the matrix in flight).
SCALAPACK_MEMORY_FACTOR = 1.5
#: Effective slowdown of spill I/O versus sequential disk: paging is random
#: 4 KB-granular traffic on virtualized EBS storage, not streaming.
SPILL_RANDOM_IO_PENALTY = 40.0
#: Panel width used by the paper's ScaLAPACK runs (Section 7.5: 128x128
#: blocks gave the best performance).
SCALAPACK_PANEL = 128
#: ScaLAPACK's per-flop advantage over the Hadoop pipeline: native
#: Fortran/BLAS versus Java map/reduce tasks.  Calibrated together with
#: BARRIER_IMBALANCE so the Section 7.5 anchors hold (M4: ours 15 h vs
#: ScaLAPACK >48 h on 64 medium instances; 5 h vs 8 h on 256 cores) — this
#: is what makes ScaLAPACK *faster* at small scale (Figure 8 ratios < 1).
SCALAPACK_COMPUTE_ADVANTAGE = 1.6
#: Per-panel barrier straggler inflation.  PDGETRF/PDGETRI execute thousands
#: of globally synchronized panel steps; on virtualized EC2 nodes every
#: barrier waits for the slowest participant, and the expected penalty grows
#: with the participant count (sublinearly — heavy-tailed hiccups, partially
#: overlapped panels).  MapReduce tasks synchronize only at job boundaries
#: and reschedule around slow nodes, which is the paper's "MapReduce
#: scheduling is more effective ... at keeping the workers busy"
#: (Section 7.5).  ``straggler(m0) = 1 + 0.055 (m0-1)^0.7``, calibrated
#: against the same anchors.
BARRIER_IMBALANCE = 0.055
BARRIER_IMBALANCE_EXPONENT = 0.7


def straggler_factor(m0: int) -> float:
    """Barrier-synchronization inflation on ScaLAPACK's critical path."""
    return 1.0 + BARRIER_IMBALANCE * max(m0 - 1, 0) ** BARRIER_IMBALANCE_EXPONENT


@dataclass(frozen=True)
class CostTerms:
    """Element/flop counts for one stage."""

    write: float
    read: float
    transfer: float
    mults: float
    adds: float

    def __add__(self, other: "CostTerms") -> "CostTerms":
        return CostTerms(
            self.write + other.write,
            self.read + other.read,
            self.transfer + other.transfer,
            self.mults + other.mults,
            self.adds + other.adds,
        )

    @property
    def flops(self) -> float:
        return self.mults + self.adds

    @property
    def io_elements(self) -> float:
        return self.write + self.read


def table1_l(m0: int) -> float:
    """Table 1's ``l = (m0 + 2 f1 + 2 f2) / 4``."""
    f1, f2 = factor_grid(m0)
    return (m0 + 2 * f1 + 2 * f2) / 4.0


def table2_l(m0: int) -> float:
    """Table 2's ``l = (m0 + f1 + f2) / 2``."""
    f1, f2 = factor_grid(m0)
    return (m0 + f1 + f2) / 2.0


def ours_lu_cost(n: int, m0: int) -> CostTerms:
    """Table 1, our algorithm's row."""
    n2 = float(n) * n
    n3 = float(n) ** 3
    l = table1_l(m0)
    return CostTerms(
        write=1.5 * n2,
        read=(l + 3) * n2,
        transfer=(l + 3) * n2,
        mults=n3 / 3,
        adds=n3 / 3,
    )


def scalapack_lu_cost(n: int, m0: int) -> CostTerms:
    """Table 1, ScaLAPACK's row."""
    n2 = float(n) * n
    n3 = float(n) ** 3
    return CostTerms(
        write=n2,
        read=n2,
        transfer=(2.0 / 3.0) * m0 * n2,
        mults=n3 / 3,
        adds=n3 / 3,
    )


def ours_inversion_cost(n: int, m0: int) -> CostTerms:
    """Table 2, our algorithm's row (triangular inverses + final product)."""
    n2 = float(n) * n
    n3 = float(n) ** 3
    l = table2_l(m0)
    return CostTerms(
        write=2 * n2,
        read=l * n2,
        transfer=(l + 2) * n2,
        mults=(2.0 / 3.0) * n3,
        adds=(2.0 / 3.0) * n3,
    )


def scalapack_inversion_cost(n: int, m0: int) -> CostTerms:
    """Table 2, ScaLAPACK's row."""
    n2 = float(n) * n
    n3 = float(n) ** 3
    return CostTerms(
        write=n2,
        read=m0 * n2,
        transfer=m0 * n2,
        mults=(2.0 / 3.0) * n3,
        adds=(2.0 / 3.0) * n3,
    )


def ours_total_cost(n: int, m0: int) -> CostTerms:
    return ours_lu_cost(n, m0) + ours_inversion_cost(n, m0)


def scalapack_total_cost(n: int, m0: int) -> CostTerms:
    return scalapack_lu_cost(n, m0) + scalapack_inversion_cost(n, m0)


# -- running-time models ---------------------------------------------------------


@dataclass(frozen=True)
class TimeBreakdown:
    """Seconds per component of a modeled run."""

    compute: float
    disk: float
    network: float
    launch: float = 0.0
    master_serial: float = 0.0
    sync: float = 0.0
    spill: float = 0.0

    @property
    def total(self) -> float:
        return (
            self.compute
            + self.disk
            + self.network
            + self.launch
            + self.master_serial
            + self.sync
            + self.spill
        )


def ours_time(n: int, cluster: ClusterSpec, nb: int) -> TimeBreakdown:
    """Modeled wall time of the MapReduce pipeline."""
    m0 = cluster.num_nodes
    node = cluster.node
    cost = ours_total_cost(n, m0)
    jobs = total_job_count(n, nb)
    leaves = 2 ** depth(n, nb)
    # The 2^d leaf LUs run serially on the master (mults + adds each).
    master_serial = leaves * (2 * float(nb) ** 3 / 3) / node.flops
    return TimeBreakdown(
        compute=cost.flops / cluster.total_flops,
        disk=cost.io_elements * BYTES_PER_ELEMENT / (m0 * node.disk_bandwidth),
        network=cost.transfer * BYTES_PER_ELEMENT / (m0 * node.net_bandwidth),
        launch=jobs * cluster.job_launch_overhead,
        master_serial=master_serial,
    )


def scalapack_time(n: int, cluster: ClusterSpec) -> TimeBreakdown:
    """Modeled wall time of ScaLAPACK's PDGETRF + PDGETRI.

    Two terms differentiate it from the pipeline, both grounded in
    Section 7.5's explanation of Figure 8 and calibrated against the M4
    anchors (see the module constants):

    * native-code compute runs ``SCALAPACK_COMPUTE_ADVANTAGE`` faster per
      flop than Hadoop tasks — ScaLAPACK wins at small scale;
    * the panel-synchronized critical path (compute + network) inflates by
      ``1 + BARRIER_IMBALANCE * m0`` — every one of the thousands of panel
      barriers waits for the slowest virtualized node, so ScaLAPACK loses
      at large scale.
    """
    m0 = cluster.num_nodes
    node = cluster.node
    cost = scalapack_total_cost(n, m0)
    straggler = straggler_factor(m0)
    compute = (
        cost.flops
        / (cluster.total_flops * SCALAPACK_COMPUTE_ADVANTAGE)
        * straggler
    )
    network = (
        cost.transfer * BYTES_PER_ELEMENT / (m0 * node.net_bandwidth) * straggler
    )
    # Per-panel latency: each of the n/panel steps runs pivot search +
    # broadcast collectives (~2 of log2(m0) hops), twice (PDGETRF, PDGETRI).
    steps = max(n // SCALAPACK_PANEL, 1)
    hops = max(m0.bit_length() - 1, 1)
    sync = 2 * steps * 2 * hops * cluster.message_latency * m0**0.5
    # Memory spill: everything is kept in memory; when the working set
    # exceeds aggregate RAM, the excess fraction of every panel step's
    # trailing-matrix traversal pages through disk as random I/O.  Total
    # bytes touched across all panel steps is ~ n^3 * 8 / (3 * panel).
    working_set = SCALAPACK_MEMORY_FACTOR * BYTES_PER_ELEMENT * float(n) ** 2
    total_mem = m0 * node.memory_bytes
    spill = 0.0
    if working_set > total_mem:
        spilled_fraction = (working_set - total_mem) / working_set
        touched = float(n) ** 3 * BYTES_PER_ELEMENT / (3 * SCALAPACK_PANEL)
        spill = (
            touched
            * spilled_fraction
            * SPILL_RANDOM_IO_PENALTY
            / (m0 * node.disk_bandwidth)
        )
    return TimeBreakdown(
        compute=compute,
        disk=cost.io_elements * BYTES_PER_ELEMENT / (m0 * node.disk_bandwidth),
        network=network,
        sync=sync,
        spill=spill,
    )


def ideal_time(t1: float, m0: int) -> float:
    """Figure 6's ideal-scalability reference: ``T(m0) = T(1) / m0``."""
    return t1 / m0
