"""1-norm condition-number estimation (Hager/Higham, the LAPACK ``gecon``
companion to LU).

The paper defers "a deeper investigation of numerical stability" — the first
tool of such an investigation is a cheap conditioning estimate.  Given the
LU factors, Hager's method estimates ``||A^-1||_1`` with a handful of
triangular solves (O(n^2) each) instead of forming the inverse (O(n^3)),
giving ``cond_1(A) = ||A||_1 * ||A^-1||_1`` almost for free after
factorization.
"""

from __future__ import annotations

import numpy as np

from .lu import LUResult, lu_decompose, solve_lu
from .permutation import apply_rows, invert as invert_perm
from .triangular import blocked_back_substitute, blocked_forward_substitute


def one_norm(a: np.ndarray) -> float:
    """``||A||_1`` — the maximum absolute column sum."""
    return float(np.max(np.abs(a).sum(axis=0)))


def _solve_transpose(lu: LUResult, b: np.ndarray) -> np.ndarray:
    """Solve ``A^T x = b`` from ``P A = L U``: ``A^T = U^T L^T P`` so
    ``x = P^T L^-T U^-T b``."""
    y = blocked_forward_substitute(lu.upper().T, b)
    z = blocked_back_substitute(lu.lower().T, y, unit_diagonal=True)
    return apply_rows(invert_perm(lu.perm), z)


def estimate_inverse_one_norm(lu: LUResult, max_iterations: int = 5) -> float:
    """Hager's estimator for ``||A^-1||_1`` using the LU factors.

    Iterates ``x -> A^-1 x`` / ``A^-T sign(..)`` steps; each iteration is two
    triangular-solve pairs.  Returns a lower bound that is within a small
    factor of the truth in practice (and exact for many matrices).
    """
    n = lu.n
    x = np.full(n, 1.0 / n)
    est = 0.0
    last_sign = np.zeros(n)
    for _ in range(max_iterations):
        y = solve_lu(lu, x)  # y = A^-1 x
        est = float(np.abs(y).sum())
        sign = np.sign(y)
        sign[sign == 0] = 1.0
        if np.array_equal(sign, last_sign):
            break
        last_sign = sign
        z = _solve_transpose(lu, sign)  # z = A^-T sign
        j = int(np.argmax(np.abs(z)))
        if np.abs(z[j]) <= z @ x:
            break
        x = np.zeros(n)
        x[j] = 1.0
    return est


def condition_estimate(a: np.ndarray, lu: LUResult | None = None) -> float:
    """Estimated 1-norm condition number ``||A||_1 ||A^-1||_1``."""
    a = np.asarray(a, dtype=np.float64)
    if lu is None:
        lu = lu_decompose(a)
    return one_norm(a) * estimate_inverse_one_norm(lu)


def expected_residual_bound(a: np.ndarray, lu: LUResult | None = None) -> float:
    """A forward-error yardstick for Section 7.2: the identity residual of a
    backward-stable inversion is ~ ``cond_1(A) * machine_eps``."""
    return condition_estimate(a, lu) * np.finfo(np.float64).eps
