"""Block-wrap matrix multiplication — Section 6.2 of the paper.

To multiply ``A @ B`` on ``m0`` nodes, the naive scheme gives each node a row
slab of ``A`` plus *all* of ``B``: total read ``(m0 + 1) n^2`` elements.
Block wrap factors ``m0 = f1 x f2`` (with ``|f1 - f2|`` minimal), splits
``A`` into ``f1`` row blocks and ``B`` into ``f2`` column blocks, and assigns
each node one ``(row block, column block)`` pair: total read drops to
``(f1 + f2) n^2``.

Both schemes are implemented with per-node read accounting so the Figure 7
ablation can compare them, and a *grid* (strided) variant is provided for the
final ``U^-1 L^-1`` product where Section 5.4 interleaves rows/columns for
load balance.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


def factor_grid(m0: int) -> tuple[int, int]:
    """The paper's grid: ``f2`` is the largest divisor of ``m0`` that is
    <= sqrt(m0) and ``f1 = m0 / f2 >= f2`` — no other divisor lies between
    them, so ``|f1 - f2|`` is minimal."""
    if m0 < 1:
        raise ValueError("m0 must be >= 1")
    f2 = 1
    d = 1
    while d * d <= m0:
        if m0 % d == 0:
            f2 = d
        d += 1
    return m0 // f2, f2


def contiguous_ranges(n: int, parts: int) -> list[tuple[int, int]]:
    """Split ``0..n`` into ``parts`` contiguous, near-equal ranges."""
    if parts < 1:
        raise ValueError("parts must be >= 1")
    bounds = [round(i * n / parts) for i in range(parts + 1)]
    return [(bounds[i], bounds[i + 1]) for i in range(parts)]


def strided_indices(n: int, parts: int, part: int) -> np.ndarray:
    """The grid-block assignment of Section 5.4: part *p* owns indices
    ``p, p + parts, p + 2*parts, ...`` — discrete rows/columns so every node
    gets an equal share regardless of where the work is heavy."""
    if not 0 <= part < parts:
        raise ValueError(f"part {part} outside [0, {parts})")
    return np.arange(part, n, parts, dtype=np.int64)


@dataclass
class MultiplyStats:
    """Read-volume accounting for one distributed multiply."""

    scheme: str
    m0: int
    per_node_elements_read: list[int]
    total_elements_read: int

    @property
    def max_node_elements_read(self) -> int:
        return max(self.per_node_elements_read) if self.per_node_elements_read else 0


def naive_multiply(a: np.ndarray, b: np.ndarray, m0: int) -> tuple[np.ndarray, MultiplyStats]:
    """Row-slab scheme: node *p* reads its rows of ``a`` plus all of ``b``."""
    a = np.asarray(a, dtype=np.float64)
    b = np.asarray(b, dtype=np.float64)
    if a.shape[1] != b.shape[0]:
        raise ValueError(f"inner dimensions differ: {a.shape} @ {b.shape}")
    out = np.zeros((a.shape[0], b.shape[1]))
    reads: list[int] = []
    for r1, r2 in contiguous_ranges(a.shape[0], m0):
        rows = a[r1:r2]
        out[r1:r2] = rows @ b
        reads.append(rows.size + b.size)
    return out, MultiplyStats("naive", m0, reads, sum(reads))


def block_wrap_multiply(
    a: np.ndarray, b: np.ndarray, m0: int
) -> tuple[np.ndarray, MultiplyStats]:
    """Block-wrap scheme over the ``f1 x f2`` node grid (Section 6.2)."""
    a = np.asarray(a, dtype=np.float64)
    b = np.asarray(b, dtype=np.float64)
    if a.shape[1] != b.shape[0]:
        raise ValueError(f"inner dimensions differ: {a.shape} @ {b.shape}")
    f1, f2 = factor_grid(m0)
    row_ranges = contiguous_ranges(a.shape[0], f1)
    col_ranges = contiguous_ranges(b.shape[1], f2)
    out = np.zeros((a.shape[0], b.shape[1]))
    reads: list[int] = []
    for i, (r1, r2) in enumerate(row_ranges):
        for j, (c1, c2) in enumerate(col_ranges):
            a_blk = a[r1:r2]
            b_blk = b[:, c1:c2]
            out[r1:r2, c1:c2] = a_blk @ b_blk
            reads.append(a_blk.size + b_blk.size)
    return out, MultiplyStats("block_wrap", m0, reads, sum(reads))


def grid_block_multiply(
    a: np.ndarray, b: np.ndarray, m0: int
) -> tuple[np.ndarray, MultiplyStats]:
    """Block wrap with *strided* row/column ownership (Section 5.4's final
    product): node ``j = j1 * f2 + j2`` owns rows ``strided(n, f1, j1)`` of
    ``a`` and columns ``strided(n, f2, j2)`` of ``b``."""
    a = np.asarray(a, dtype=np.float64)
    b = np.asarray(b, dtype=np.float64)
    if a.shape[1] != b.shape[0]:
        raise ValueError(f"inner dimensions differ: {a.shape} @ {b.shape}")
    f1, f2 = factor_grid(m0)
    out = np.zeros((a.shape[0], b.shape[1]))
    reads: list[int] = []
    for j1 in range(f1):
        rows = strided_indices(a.shape[0], f1, j1)
        a_blk = a[rows]
        for j2 in range(f2):
            cols = strided_indices(b.shape[1], f2, j2)
            b_blk = b[:, cols]
            out[np.ix_(rows, cols)] = a_blk @ b_blk
            reads.append(a_blk.size + b_blk.size)
    return out, MultiplyStats("grid_block", m0, reads, sum(reads))


def naive_read_elements(n: int, m0: int) -> int:
    """Closed-form read volume of the naive scheme: ``(m0 + 1) n^2``."""
    return (m0 + 1) * n * n


def block_wrap_read_elements(n: int, m0: int) -> int:
    """Closed-form read volume of block wrap: ``(f1 + f2) n^2``."""
    f1, f2 = factor_grid(m0)
    return (f1 + f2) * n * n
