"""Cholesky factorization and SPD inversion — the related-work method of
Bientinesi, Gunter, van de Geijn [3] (Section 3).

The paper notes that for symmetric positive definite matrices, inversion via
the Cholesky factor "shows good performance and scalability, but does not
work for general matrices".  This single-node implementation provides the
specialized baseline: ``A = L L^T``, ``A^-1 = L^-T L^-1``, at roughly half
the arithmetic of LU-based inversion on SPD inputs.
"""

from __future__ import annotations

import numpy as np

from .triangular import invert_lower


class NotPositiveDefiniteError(np.linalg.LinAlgError):
    """Raised when the input has a non-positive pivot (not SPD)."""


def cholesky_decompose(a: np.ndarray, *, check_symmetry: bool = True) -> np.ndarray:
    """The lower Cholesky factor ``L`` with ``A = L L^T``.

    Column-by-column elimination (the right-looking variant), vectorized per
    column; no pivoting is needed for SPD inputs — the property that makes
    the specialized algorithm simpler than LU.
    """
    a = np.asarray(a, dtype=np.float64)
    if a.ndim != 2 or a.shape[0] != a.shape[1]:
        raise ValueError(f"Cholesky needs a square matrix, got {a.shape}")
    if check_symmetry and not np.allclose(a, a.T, atol=1e-10 * max(1.0, np.abs(a).max())):
        raise ValueError("matrix is not symmetric")
    n = a.shape[0]
    lower = np.tril(a).astype(np.float64)
    for j in range(n):
        if j:
            lower[j:, j] -= lower[j:, :j] @ lower[j, :j]
        pivot = lower[j, j]
        if pivot <= 0.0:
            raise NotPositiveDefiniteError(
                f"non-positive pivot {pivot:.3e} at column {j}"
            )
        lower[j:, j] /= np.sqrt(pivot)
    return lower


def cholesky_invert(a: np.ndarray) -> np.ndarray:
    """SPD inversion through the Cholesky factor: ``A^-1 = L^-T L^-1``."""
    lower = cholesky_decompose(a)
    linv = invert_lower(lower)
    return linv.T @ linv


def cholesky_solve(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Solve ``A x = b`` for SPD ``A`` (two triangular solves)."""
    from .triangular import back_substitute, forward_substitute

    lower = cholesky_decompose(a)
    y = forward_substitute(lower, np.asarray(b, dtype=np.float64))
    return back_substitute(lower.T, y)


def cholesky_flop_count(n: int) -> float:
    """Multiplications of the factorization: n^3/6 — half of LU, the
    specialization's arithmetic advantage."""
    return float(n) ** 3 / 6.0
