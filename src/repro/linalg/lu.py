"""LU decomposition with partial pivoting — Algorithm 1 of the paper.

This is the single-node kernel the pipeline runs on the master for blocks of
order <= nb.  The factorization is computed in place: after the call, the
strict lower triangle holds ``L`` (unit diagonal implied) and the upper
triangle holds ``U``, exactly the storage convention Algorithm 1 describes.
The pivoting permutation is returned as the compact row array ``S`` with
``(PA)_i = A_{S[i]}`` so that ``P A = L U``.

The inner update is the rank-1 outer-product elimination step, vectorized per
the HPC guide (one BLAS-2 update per column instead of the scalar triple loop
in the paper's listing — same arithmetic, same operation count n^3/3 mults).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from . import permutation


class SingularMatrixError(np.linalg.LinAlgError):
    """Raised when no usable pivot exists (matrix is singular to working
    precision)."""


@dataclass
class LUResult:
    """Outcome of one LU factorization.

    ``lu`` packs both factors (unit-lower + upper); ``perm`` is the compact
    pivot array ``S``.  ``lower()``/``upper()`` materialize the factors.
    """

    lu: np.ndarray
    perm: np.ndarray

    @property
    def n(self) -> int:
        return self.lu.shape[0]

    def lower(self) -> np.ndarray:
        l = np.tril(self.lu, k=-1)
        np.fill_diagonal(l, 1.0)
        return l

    def upper(self) -> np.ndarray:
        return np.triu(self.lu)

    def flops(self) -> float:
        """Multiplication count of the factorization (~n^3/3, Table 1)."""
        n = float(self.n)
        return n**3 / 3.0


def lu_decompose(
    a: np.ndarray,
    *,
    pivot: bool = True,
    pivot_tol: float = 0.0,
) -> LUResult:
    """Factor ``a`` so that ``P a = L U`` (Algorithm 1).

    Parameters
    ----------
    a:
        Square matrix; not modified (a float64 copy is factored).
    pivot:
        Partial pivoting on (the paper always pivots; ``False`` is provided
        for tests demonstrating why pivoting matters).
    pivot_tol:
        Pivots with absolute value <= this are treated as zero.

    Raises
    ------
    SingularMatrixError
        If the best available pivot in some column is (near-)zero.
    """
    a = np.asarray(a, dtype=np.float64)
    if a.ndim != 2 or a.shape[0] != a.shape[1]:
        raise ValueError(f"LU needs a square matrix, got shape {a.shape}")
    n = a.shape[0]
    lu = a.copy()
    perm = permutation.identity(n)

    for i in range(n):
        if pivot:
            # Algorithm 1 line 3: pick the max |element| in column i, rows i..n.
            rel = int(np.argmax(np.abs(lu[i:, i])))
            j = i + rel
            if j != i:
                lu[[i, j], :] = lu[[j, i], :]
                perm[[i, j]] = perm[[j, i]]
        pivot_val = lu[i, i]
        if abs(pivot_val) <= pivot_tol:
            raise SingularMatrixError(
                f"zero pivot at step {i} (|pivot|={abs(pivot_val):.3e})"
            )
        if i + 1 < n:
            # Lines 6-8: scale the multipliers.
            lu[i + 1 :, i] /= pivot_val
            # Lines 9-13: rank-1 trailing update, vectorized.
            lu[i + 1 :, i + 1 :] -= np.outer(lu[i + 1 :, i], lu[i, i + 1 :])

    return LUResult(lu=lu, perm=perm)


def lu_reconstruct(result: LUResult) -> np.ndarray:
    """Recompute ``P A`` from the factors (testing aid): returns ``L @ U``."""
    return result.lower() @ result.upper()


def solve_lu(result: LUResult, b: np.ndarray) -> np.ndarray:
    """Solve ``A x = b`` given ``P A = L U``: forward then back substitution
    applied to ``P b``."""
    from .triangular import back_substitute, forward_substitute

    pb = permutation.apply_rows(result.perm, np.asarray(b, dtype=np.float64))
    y = forward_substitute(result.lower(), pb, unit_diagonal=True)
    return back_substitute(result.upper(), y)


def lu_flop_count(n: int) -> float:
    """Multiplications used by LU on an order-n matrix (Table 1: n^3/3)."""
    return float(n) ** 3 / 3.0
