"""Newton iterative refinement of a computed inverse.

The paper leaves "a deeper investigation of numerical stability for future
work" (Section 5).  This extension provides the standard tool for that
investigation: the Newton–Schulz iteration

    X_{k+1} = X_k (2 I - A X_k)

which converges quadratically whenever ``||I - A X_0|| < 1`` and lets an
inverse computed in fast/blocked arithmetic be polished to working-precision
accuracy with a few matrix multiplications — useful for the ill-conditioned
inputs where block-local pivoting loses digits.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np


@dataclass
class RefinementResult:
    inverse: np.ndarray
    iterations: int
    converged: bool
    residual_history: list[float] = field(default_factory=list)

    @property
    def final_residual(self) -> float:
        return self.residual_history[-1] if self.residual_history else float("inf")


def newton_schulz_refine(
    a: np.ndarray,
    x0: np.ndarray,
    *,
    tol: float = 1e-14,
    max_iterations: int = 20,
) -> RefinementResult:
    """Refine approximate inverse ``x0`` of ``a``.

    Stops when ``max |I - A X|`` drops below ``tol``, stalls, or diverges
    (returns the best iterate seen, flagged unconverged, rather than raising:
    a diverging refinement means ``x0`` was outside the convergence basin).
    """
    a = np.asarray(a, dtype=np.float64)
    x = np.asarray(x0, dtype=np.float64).copy()
    n = a.shape[0]
    if a.shape != x.shape or a.ndim != 2 or a.shape[0] != a.shape[1]:
        raise ValueError("a and x0 must be square matrices of the same order")
    eye = np.eye(n)

    def residual(xk: np.ndarray) -> float:
        return float(np.max(np.abs(eye - a @ xk)))

    best_x, best_r = x, residual(x)
    history = [best_r]
    for k in range(1, max_iterations + 1):
        x = x @ (2.0 * eye - a @ x)
        r = residual(x)
        history.append(r)
        if r < best_r:
            best_x, best_r = x, r
        if r < tol:
            return RefinementResult(x, k, True, history)
        # Quadratic convergence stalls at roundoff; diverging residuals mean
        # we left the basin — stop either way.
        if r >= history[-2]:
            break
    return RefinementResult(best_x, len(history) - 1, best_r < tol, history)
