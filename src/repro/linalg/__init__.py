"""Single-node numerical kernels: LU (Algorithm 1), triangular inversion
(Equation 4), permutations, block-wrap multiplication (Section 6.2), and the
verification residuals of Section 7.2."""

from . import blockwrap, permutation, verify
from .cg import (
    CGResult,
    cg_flops_per_solve,
    conjugate_gradient,
    inversion_flops,
    solve_strategy_crossover,
)
from .condest import (
    condition_estimate,
    estimate_inverse_one_norm,
    expected_residual_bound,
    one_norm,
)
from .cholesky import (
    NotPositiveDefiniteError,
    cholesky_decompose,
    cholesky_flop_count,
    cholesky_invert,
    cholesky_solve,
)
from .lu import LUResult, SingularMatrixError, lu_decompose, lu_flop_count, solve_lu
from .refine import RefinementResult, newton_schulz_refine
from .tile_lu import TileTaskCount, tile_lu, tile_task_counts
from .triangular import (
    back_substitute,
    blocked_back_substitute,
    blocked_forward_substitute,
    forward_substitute,
    invert_lower,
    invert_lower_columns,
    invert_upper,
    invert_upper_rows,
    is_lower_triangular,
    is_upper_triangular,
    triangular_inverse_flop_count,
)

__all__ = [
    "LUResult",
    "NotPositiveDefiniteError",
    "RefinementResult",
    "SingularMatrixError",
    "TileTaskCount",
    "CGResult",
    "cg_flops_per_solve",
    "cholesky_decompose",
    "conjugate_gradient",
    "inversion_flops",
    "solve_strategy_crossover",
    "cholesky_flop_count",
    "cholesky_invert",
    "cholesky_solve",
    "condition_estimate",
    "estimate_inverse_one_norm",
    "expected_residual_bound",
    "newton_schulz_refine",
    "one_norm",
    "tile_lu",
    "tile_task_counts",
    "back_substitute",
    "blocked_back_substitute",
    "blocked_forward_substitute",
    "blockwrap",
    "forward_substitute",
    "invert_lower",
    "invert_lower_columns",
    "invert_upper",
    "invert_upper_rows",
    "is_lower_triangular",
    "is_upper_triangular",
    "lu_decompose",
    "lu_flop_count",
    "permutation",
    "solve_lu",
    "triangular_inverse_flop_count",
    "verify",
]
