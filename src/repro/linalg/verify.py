"""Numerical verification helpers.

Section 7.2 validates the implementation by computing ``I_n - M M^-1`` and
checking every element is below 1e-5; these helpers compute that residual and
the factorization residual ``P A - L U`` used throughout the tests.
"""

from __future__ import annotations

import numpy as np

from . import permutation

#: The acceptance threshold of Section 7.2.
PAPER_RESIDUAL_BOUND = 1e-5


def identity_residual(a: np.ndarray, a_inv: np.ndarray) -> float:
    """``max |I - A A^-1|`` — the paper's correctness metric (Section 7.2)."""
    a = np.asarray(a, dtype=np.float64)
    a_inv = np.asarray(a_inv, dtype=np.float64)
    n = a.shape[0]
    return float(np.max(np.abs(np.eye(n) - a @ a_inv)))


def two_sided_identity_residual(a: np.ndarray, a_inv: np.ndarray) -> float:
    """Worse of ``|I - A A^-1|`` and ``|I - A^-1 A|`` (inverses commute)."""
    return max(identity_residual(a, a_inv), identity_residual(a_inv, a))


def lu_residual(a: np.ndarray, lower: np.ndarray, upper: np.ndarray, perm: np.ndarray) -> float:
    """``max |P A - L U|`` for a pivoted factorization."""
    pa = permutation.apply_rows(perm, np.asarray(a, dtype=np.float64))
    return float(np.max(np.abs(pa - lower @ upper)))


def relative_error(actual: np.ndarray, expected: np.ndarray) -> float:
    """Frobenius-norm relative error, guarding the zero-matrix case."""
    expected = np.asarray(expected, dtype=np.float64)
    actual = np.asarray(actual, dtype=np.float64)
    denom = np.linalg.norm(expected)
    if denom == 0.0:
        return float(np.linalg.norm(actual))
    return float(np.linalg.norm(actual - expected) / denom)


def passes_paper_bound(a: np.ndarray, a_inv: np.ndarray) -> bool:
    """Section 7.2 acceptance: every element of ``I - A A^-1`` under 1e-5."""
    return identity_residual(a, a_inv) < PAPER_RESIDUAL_BOUND
