"""Tile LU decomposition — the related-work algorithm of Agullo et al. [1]
(Section 3), single-node.

The paper contrasts its recursive split with the *tile* formulation that
"splits the matrix into square submatrices and updates these submatrices
one-by-one".  Implementing it provides (a) an independent blocked
factorization to cross-check the recursive scheme against and (b) the tiled
task structure (GETRF -> TRSM row/column -> GEMM trailing updates) whose
dependency graph is what shared-memory runtimes like QUARK [9] schedule.

Pivoting note: like the paper's block method, tile LU as implemented here
pivots only *within* the diagonal tile (the incremental-pivoting variant of
the tile algorithm), so its numerical domain matches the pipeline's.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from . import permutation
from .blockwrap import contiguous_ranges
from .lu import LUResult, SingularMatrixError, lu_decompose
from .triangular import forward_substitute


@dataclass
class TileTaskCount:
    """How many kernel tasks of each type the factorization executed — the
    quantity runtime schedulers reason about."""

    getrf: int = 0
    trsm: int = 0
    gemm: int = 0

    @property
    def total(self) -> int:
        return self.getrf + self.trsm + self.gemm


def tile_lu(a: np.ndarray, tile: int = 32) -> tuple[LUResult, TileTaskCount]:
    """Factor ``P A = L U`` tile-by-tile.

    For each diagonal step k: GETRF on tile (k,k) with local pivoting
    (applied across the tile row), TRSM to the tile row of U and tile column
    of L, then GEMM updates on the trailing tiles.
    """
    a = np.asarray(a, dtype=np.float64)
    if a.ndim != 2 or a.shape[0] != a.shape[1]:
        raise ValueError(f"tile LU needs a square matrix, got {a.shape}")
    if tile < 1:
        raise ValueError("tile must be >= 1")
    n = a.shape[0]
    lu = a.copy()
    perm = permutation.identity(n)
    ranges = contiguous_ranges(n, max(-(-n // tile), 1))
    counts = TileTaskCount()

    for k, (k1, k2) in enumerate(ranges):
        if k2 <= k1:
            continue
        # GETRF on the diagonal tile, pivoting within the tile's rows but
        # applying the swaps across the whole matrix width.
        diag = lu_decompose(lu[k1:k2, k1:k2])
        counts.getrf += 1
        local_perm = diag.perm
        swap = np.arange(n, dtype=np.int64)
        swap[k1:k2] = k1 + local_perm
        lu[k1:k2, :] = lu[k1 + local_perm, :]
        perm[k1:k2] = perm[k1 + local_perm]
        lu[k1:k2, k1:k2] = diag.lu
        l_kk = diag.lower()
        u_kk = diag.upper()
        if np.any(np.diag(u_kk) == 0.0):
            raise SingularMatrixError(f"singular diagonal tile at step {k}")

        # TRSM row: U[k, j] = L_kk^-1 A[k, j].
        for j1, j2 in ranges[k + 1 :]:
            if j2 <= j1:
                continue
            lu[k1:k2, j1:j2] = forward_substitute(
                l_kk, lu[k1:k2, j1:j2], unit_diagonal=True
            )
            counts.trsm += 1
        # TRSM column: L[i, k] = A[i, k] U_kk^-1.
        for i1, i2 in ranges[k + 1 :]:
            if i2 <= i1:
                continue
            lu[i1:i2, k1:k2] = forward_substitute(u_kk.T, lu[i1:i2, k1:k2].T).T
            counts.trsm += 1
        # GEMM trailing updates.
        for i1, i2 in ranges[k + 1 :]:
            for j1, j2 in ranges[k + 1 :]:
                if i2 <= i1 or j2 <= j1:
                    continue
                lu[i1:i2, j1:j2] -= lu[i1:i2, k1:k2] @ lu[k1:k2, j1:j2]
                counts.gemm += 1

    return LUResult(lu=lu, perm=perm), counts


def tile_task_counts(n: int, tile: int) -> TileTaskCount:
    """Closed-form task counts for an order-n matrix: with t = ceil(n/tile)
    tiles per side, GETRF = t, TRSM = t(t-1), GEMM = t(t-1)(2t-1)/6."""
    t = max(-(-n // tile), 1)
    return TileTaskCount(
        getrf=t,
        trsm=t * (t - 1),
        gemm=sum(k * k for k in range(t)),
    )
