"""Row-permutation utilities.

The paper stores the pivoting permutation compactly as an array ``S`` where
``[S]_i`` is the source row of permuted row *i* — i.e. row *i* of ``PA`` is
row ``S[i]`` of ``A`` (Section 4.1).  All pipeline code passes these arrays
around instead of dense permutation matrices.
"""

from __future__ import annotations

import numpy as np


def identity(n: int) -> np.ndarray:
    """The identity permutation on ``n`` rows."""
    return np.arange(n, dtype=np.int64)


def is_permutation(s: np.ndarray) -> bool:
    """True iff ``s`` is a bijection of ``0..len(s)-1``."""
    s = np.asarray(s)
    if s.ndim != 1:
        return False
    n = s.shape[0]
    seen = np.zeros(n, dtype=bool)
    for v in s:
        if not (0 <= v < n) or seen[v]:
            return False
        seen[v] = True
    return True


def apply_rows(s: np.ndarray, a: np.ndarray) -> np.ndarray:
    """Compute ``P A``: row *i* of the result is row ``s[i]`` of ``a``."""
    return a[np.asarray(s, dtype=np.int64)]


def apply_columns(s: np.ndarray, a: np.ndarray) -> np.ndarray:
    """Compute ``A P``: the column permutation used for the final
    ``A^-1 = (U^-1 L^-1) P`` step.

    With ``P`` defined by ``(PA)_i = A_{s[i]}`` we have ``P_{ik} = 1`` iff
    ``k = s[i]``, so ``(CP)_{i, s[k]} = C_{i, k}`` — column ``s[k]`` of the
    result is column ``k`` of ``C``.
    """
    s = np.asarray(s, dtype=np.int64)
    out = np.empty_like(a)
    out[:, s] = a
    return out


def invert(s: np.ndarray) -> np.ndarray:
    """The inverse permutation: ``invert(s)[s[i]] = i``."""
    s = np.asarray(s, dtype=np.int64)
    inv = np.empty_like(s)
    inv[s] = np.arange(s.shape[0], dtype=np.int64)
    return inv


def compose(outer: np.ndarray, inner: np.ndarray) -> np.ndarray:
    """Permutation of applying ``inner`` first, then ``outer``:
    ``apply_rows(compose(outer, inner), a) == apply_rows(outer, apply_rows(inner, a))``.
    """
    inner = np.asarray(inner, dtype=np.int64)
    outer = np.asarray(outer, dtype=np.int64)
    return inner[outer]


def augment(p1: np.ndarray, p2: np.ndarray) -> np.ndarray:
    """Block-diagonal combination used at each recursion level of Algorithm 2:
    ``P = diag(P1, P2)`` acting on the stacked rows, with ``p2``'s indices
    shifted past ``p1``'s block."""
    p1 = np.asarray(p1, dtype=np.int64)
    p2 = np.asarray(p2, dtype=np.int64)
    return np.concatenate([p1, p2 + p1.shape[0]])


def to_matrix(s: np.ndarray) -> np.ndarray:
    """Dense ``P`` with ``P @ A == apply_rows(s, A)`` (for verification only)."""
    s = np.asarray(s, dtype=np.int64)
    n = s.shape[0]
    p = np.zeros((n, n))
    p[np.arange(n), s] = 1.0
    return p
