"""Conjugate gradient — the inversion-free alternative of Section 3.

Related work: "MADlib includes a conjugate gradient method to solve linear
equations, but it does not support parallel matrix inversion", and the
introduction notes that "it may be possible to avoid matrix inversion by
using alternate numerical methods".  This module supplies that alternative
so the trade-off is measurable: CG costs O(k n^2) per right-hand side (k =
iterations, growing with sqrt(cond)), while an explicit inverse costs O(n^3)
once and O(n^2) per subsequent right-hand side — inversion wins when the
same operator serves many solves (the CT / repeated-analysis pattern of
Section 1).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np


@dataclass
class CGResult:
    x: np.ndarray
    iterations: int
    converged: bool
    residual_history: list[float] = field(default_factory=list)

    @property
    def final_residual(self) -> float:
        return self.residual_history[-1] if self.residual_history else float("inf")


def conjugate_gradient(
    a: np.ndarray,
    b: np.ndarray,
    *,
    x0: np.ndarray | None = None,
    tol: float = 1e-10,
    max_iterations: int | None = None,
) -> CGResult:
    """Solve ``A x = b`` for symmetric positive definite ``A``.

    Stops when the relative residual ``||b - A x|| / ||b||`` drops below
    ``tol`` or after ``max_iterations`` (default ``10 n``).
    """
    a = np.asarray(a, dtype=np.float64)
    b = np.asarray(b, dtype=np.float64)
    n = a.shape[0]
    if a.ndim != 2 or a.shape[1] != n:
        raise ValueError(f"matrix must be square, got {a.shape}")
    if b.shape != (n,):
        raise ValueError(f"rhs must be a length-{n} vector, got {b.shape}")
    if max_iterations is None:
        max_iterations = 10 * n

    x = np.zeros(n) if x0 is None else np.asarray(x0, dtype=np.float64).copy()
    r = b - a @ x
    p = r.copy()
    rs = float(r @ r)
    b_norm = float(np.linalg.norm(b)) or 1.0
    history = [float(np.sqrt(rs)) / b_norm]
    if history[0] < tol:
        return CGResult(x, 0, True, history)

    for k in range(1, max_iterations + 1):
        ap = a @ p
        denom = float(p @ ap)
        if denom <= 0:
            # Not SPD along this direction; bail out honestly.
            return CGResult(x, k - 1, False, history)
        alpha = rs / denom
        x += alpha * p
        r -= alpha * ap
        rs_new = float(r @ r)
        rel = float(np.sqrt(rs_new)) / b_norm
        history.append(rel)
        if rel < tol:
            return CGResult(x, k, True, history)
        p = r + (rs_new / rs) * p
        rs = rs_new
    return CGResult(x, max_iterations, False, history)


def cg_flops_per_solve(n: int, iterations: int) -> float:
    """~2 n^2 multiplications per iteration (the matvec dominates)."""
    return 2.0 * n * n * iterations


def inversion_flops(n: int, num_rhs: int) -> float:
    """Explicit inverse: n^3 once (Tables 1-2's mults) + n^2 per solve."""
    return float(n) ** 3 + float(n) ** 2 * num_rhs


def solve_strategy_crossover(n: int, cg_iterations: int) -> int:
    """Number of right-hand sides above which the explicit inverse is the
    cheaper strategy (in multiplication counts)."""
    per_rhs_cg = cg_flops_per_solve(n, cg_iterations)
    per_rhs_inv = float(n) ** 2
    if per_rhs_cg <= per_rhs_inv:
        return int(1e18)  # CG never loses (k <= 1/2 iteration — degenerate)
    return int(np.ceil(float(n) ** 3 / (per_rhs_cg - per_rhs_inv)))
