"""Triangular inversion and substitution — Equation 4 of the paper.

The inverse of a lower triangular matrix is computed row by row:

    [L^-1]_ii = 1 / [L]_ii
    [L^-1]_ij = -(1/[L]_ii) * sum_{k=j}^{i-1} [L]_ik [L^-1]_kj   (i > j)

A column of the inverse depends only on earlier rows of the *same* column, so
columns are independent — this is what Section 4.3 parallelizes across
mappers.  :func:`invert_lower_columns` computes an arbitrary column subset,
which is exactly a map task's share; :func:`invert_lower` is the full-matrix
convenience built on the same kernel.

Upper-triangular inversion reuses the lower kernel on the transpose
(Section 6.3: the implementation always stores ``U`` transposed), so
``U^-1 = (invert_lower(U^T))^T``.
"""

from __future__ import annotations

import numpy as np


class TriangularShapeError(ValueError):
    """Raised when an input is not (numerically) triangular."""


def _check_square(m: np.ndarray, what: str) -> np.ndarray:
    m = np.asarray(m, dtype=np.float64)
    if m.ndim != 2 or m.shape[0] != m.shape[1]:
        raise TriangularShapeError(f"{what} must be square, got shape {m.shape}")
    return m


def is_lower_triangular(m: np.ndarray, tol: float = 0.0) -> bool:
    m = np.asarray(m)
    return bool(np.all(np.abs(np.triu(m, k=1)) <= tol))


def is_upper_triangular(m: np.ndarray, tol: float = 0.0) -> bool:
    m = np.asarray(m)
    return bool(np.all(np.abs(np.tril(m, k=-1)) <= tol))


def _check_invertible_diagonal(diag: np.ndarray) -> None:
    if np.any(diag == 0.0):
        idx = int(np.argmax(diag == 0.0))
        raise np.linalg.LinAlgError(f"triangular matrix singular: zero diagonal at {idx}")


# -- substitution -------------------------------------------------------------


def forward_substitute(
    l: np.ndarray, b: np.ndarray, *, unit_diagonal: bool = False
) -> np.ndarray:
    """Solve ``L y = b`` for lower-triangular ``L`` (b may have many columns)."""
    l = _check_square(l, "L")
    b = np.asarray(b, dtype=np.float64)
    y = b.astype(np.float64, copy=True)
    one_d = y.ndim == 1
    if one_d:
        y = y[:, None]
    n = l.shape[0]
    if y.shape[0] != n:
        raise ValueError(f"rhs has {y.shape[0]} rows, L is {n}x{n}")
    if not unit_diagonal:
        _check_invertible_diagonal(np.diag(l))
    for i in range(n):
        if i:
            y[i] -= l[i, :i] @ y[:i]
        if not unit_diagonal:
            y[i] /= l[i, i]
    return y[:, 0] if one_d else y


def back_substitute(u: np.ndarray, b: np.ndarray, *, unit_diagonal: bool = False) -> np.ndarray:
    """Solve ``U x = b`` for upper-triangular ``U``."""
    u = _check_square(u, "U")
    b = np.asarray(b, dtype=np.float64)
    x = b.astype(np.float64, copy=True)
    one_d = x.ndim == 1
    if one_d:
        x = x[:, None]
    n = u.shape[0]
    if x.shape[0] != n:
        raise ValueError(f"rhs has {x.shape[0]} rows, U is {n}x{n}")
    if not unit_diagonal:
        _check_invertible_diagonal(np.diag(u))
    for i in range(n - 1, -1, -1):
        if i + 1 < n:
            x[i] -= u[i, i + 1 :] @ x[i + 1 :]
        if not unit_diagonal:
            x[i] /= u[i, i]
    return x[:, 0] if one_d else x


# -- blocked (BLAS-3) substitution ---------------------------------------------


def blocked_forward_substitute(
    l: np.ndarray,
    b: np.ndarray,
    *,
    unit_diagonal: bool = False,
    block: int = 64,
) -> np.ndarray:
    """Recursive blocked solve of ``L Y = B``.

    The row-by-row kernel issues O(n) small BLAS-1/2 calls; this variant
    recurses on ``L = [[L11, 0], [L21, L22]]`` — solve L11, one big GEMM
    update, solve L22 — turning most of the work into matrix-matrix products
    (the cache-friendly formulation the HPC guides recommend).  Identical
    arithmetic up to roundoff; used by the inversion kernels for large
    operands.
    """
    l = _check_square(l, "L")
    b = np.asarray(b, dtype=np.float64)
    one_d = b.ndim == 1
    y = b.astype(np.float64, copy=True)
    if one_d:
        y = y[:, None]
    n = l.shape[0]
    if y.shape[0] != n:
        raise ValueError(f"rhs has {y.shape[0]} rows, L is {n}x{n}")

    def solve(lo: int, hi: int) -> None:
        if hi - lo <= block:
            sub = l[lo:hi, lo:hi]
            y[lo:hi] = forward_substitute(sub, y[lo:hi], unit_diagonal=unit_diagonal)
            return
        mid = (lo + hi) // 2
        solve(lo, mid)
        y[mid:hi] -= l[mid:hi, lo:mid] @ y[lo:mid]
        solve(mid, hi)

    solve(0, n)
    return y[:, 0] if one_d else y


def blocked_back_substitute(
    u: np.ndarray,
    b: np.ndarray,
    *,
    unit_diagonal: bool = False,
    block: int = 64,
) -> np.ndarray:
    """Recursive blocked solve of ``U X = B`` (mirror of the forward case)."""
    u = _check_square(u, "U")
    b = np.asarray(b, dtype=np.float64)
    one_d = b.ndim == 1
    x = b.astype(np.float64, copy=True)
    if one_d:
        x = x[:, None]
    n = u.shape[0]
    if x.shape[0] != n:
        raise ValueError(f"rhs has {x.shape[0]} rows, U is {n}x{n}")

    def solve(lo: int, hi: int) -> None:
        if hi - lo <= block:
            sub = u[lo:hi, lo:hi]
            x[lo:hi] = back_substitute(sub, x[lo:hi], unit_diagonal=unit_diagonal)
            return
        mid = (lo + hi) // 2
        solve(mid, hi)
        x[lo:mid] -= u[lo:mid, mid:hi] @ x[mid:hi]
        solve(lo, mid)

    solve(0, n)
    return x[:, 0] if one_d else x


# -- inversion (Equation 4) ----------------------------------------------------


def invert_lower_columns(l: np.ndarray, columns: np.ndarray | list[int]) -> np.ndarray:
    """Columns ``columns`` of ``L^-1`` via Equation 4.

    Returns an ``n x len(columns)`` array; column *t* of the result is column
    ``columns[t]`` of the inverse.  This is the unit of work of one mapper in
    the final inversion job (Section 5.4 assigns each mapper a strided set of
    columns for load balance).
    """
    l = _check_square(l, "L")
    cols = np.asarray(columns, dtype=np.int64)
    n = l.shape[0]
    if cols.size and (cols.min() < 0 or cols.max() >= n):
        raise ValueError("column index out of range")
    diag = np.diag(l)
    _check_invertible_diagonal(diag)
    x = np.zeros((n, cols.size))
    # Row i of each requested column: Equation 4, vectorized across columns.
    sel = np.zeros((n, cols.size))
    sel[cols, np.arange(cols.size)] = 1.0  # identity restricted to the columns
    for i in range(n):
        acc = sel[i]
        if i:
            acc = acc - l[i, :i] @ x[:i]
        x[i] = acc / diag[i]
    return x


def invert_lower(l: np.ndarray) -> np.ndarray:
    """Full ``L^-1`` (Equation 4 over all columns)."""
    n = _check_square(l, "L").shape[0]
    return invert_lower_columns(l, np.arange(n))


def invert_upper(u: np.ndarray) -> np.ndarray:
    """``U^-1`` computed through the transposed-lower kernel (Section 6.3:
    the pipeline stores ``U^T`` and inverts it as a lower triangular matrix)."""
    u = _check_square(u, "U")
    return invert_lower(u.T).T


def invert_upper_rows(u: np.ndarray, rows: np.ndarray | list[int]) -> np.ndarray:
    """Rows ``rows`` of ``U^-1`` — one mapper's share in the final job.

    Row *i* of ``U^-1`` is column *i* of ``(U^T)^-1``; computed via the
    column kernel on the transpose and returned as ``len(rows) x n``.
    """
    u = _check_square(u, "U")
    return invert_lower_columns(u.T, rows).T


def triangular_inverse_flop_count(n: int) -> float:
    """Multiplications for inverting one order-n triangular factor (~n^3/6);
    the pair plus the final product totals 2/3 n^3 as in Table 2."""
    return float(n) ** 3 / 6.0
