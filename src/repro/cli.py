"""Declarative subcommand registry behind ``python -m repro``.

Instead of one monolithic ``argparse`` tree, each subsystem exposes a
``register_commands(registry)`` hook and describes its own commands:

* :meth:`CommandRegistry.add` — a regular subcommand: a ``configure``
  callback adds arguments to the sub-parser, ``run`` receives the parsed
  :class:`argparse.Namespace` and returns an exit status;
* :meth:`CommandRegistry.add_passthrough` — a command that owns its whole
  argument vector (it has its own parser, e.g. ``repro.analysis.cli``).
  Passthroughs are dispatched *before* the top-level parser runs, so every
  flag — current and future — flows straight through, while still
  appearing in ``python -m repro --help``.

:func:`build_registry` imports every subsystem hook in display order and
returns the populated registry; ``repro.__main__`` is a two-liner on top.
"""

from __future__ import annotations

import argparse
import importlib
import sys
from dataclasses import dataclass
from typing import Callable, Sequence

#: Subsystem modules probed for a ``register_commands(registry)`` hook, in
#: the order their commands should appear in ``--help``.
SUBSYSTEMS: tuple[str, ...] = (
    "repro.inversion.cli",
    "repro.analysis.cli",
    "repro.chaos.cli",
    "repro.dfs.cli",
    "repro.experiments.cli",
    "repro.telemetry.cli",
)


@dataclass(frozen=True)
class Command:
    """One registered subcommand."""

    name: str
    help: str
    #: adds this command's arguments to its sub-parser (regular commands).
    configure: Callable[[argparse.ArgumentParser], None] | None = None
    #: handles the parsed namespace (regular commands).
    run: Callable[[argparse.Namespace], int] | None = None
    #: full-argv entry point (passthrough commands).
    passthrough: Callable[[list[str]], int] | None = None


class CommandRegistry:
    """Collects :class:`Command` entries and dispatches ``argv`` to them."""

    def __init__(
        self,
        prog: str = "python -m repro",
        description: str = (
            "Scalable Matrix Inversion Using MapReduce (HPDC 2014) "
            "— reproduction CLI"
        ),
    ) -> None:
        self.prog = prog
        self.description = description
        self._commands: dict[str, Command] = {}

    # -- registration --------------------------------------------------------

    def add(
        self,
        name: str,
        run: Callable[[argparse.Namespace], int],
        *,
        help: str,
        configure: Callable[[argparse.ArgumentParser], None] | None = None,
    ) -> None:
        """Register a regular subcommand."""
        self._register(Command(name, help, configure=configure, run=run))

    def add_passthrough(
        self,
        name: str,
        main: Callable[[list[str]], int],
        *,
        help: str,
    ) -> None:
        """Register a command that parses its own argv (``main(argv)``)."""
        self._register(Command(name, help, passthrough=main))

    def _register(self, command: Command) -> None:
        if command.name in self._commands:
            raise ValueError(f"duplicate command {command.name!r}")
        self._commands[command.name] = command

    @property
    def commands(self) -> list[Command]:
        """Registered commands in registration (= display) order."""
        return list(self._commands.values())

    # -- dispatch ------------------------------------------------------------

    def build_parser(self) -> argparse.ArgumentParser:
        parser = argparse.ArgumentParser(
            prog=self.prog, description=self.description
        )
        sub = parser.add_subparsers(dest="command", required=True)
        for command in self._commands.values():
            p = sub.add_parser(command.name, help=command.help)
            if command.configure is not None:
                command.configure(p)
            if command.run is not None:
                p.set_defaults(_run=command.run)
        return parser

    def dispatch(self, argv: Sequence[str] | None = None) -> int:
        argv = list(sys.argv[1:] if argv is None else argv)
        if argv:
            command = self._commands.get(argv[0])
            if command is not None and command.passthrough is not None:
                return command.passthrough(argv[1:])
        args = self.build_parser().parse_args(argv)
        run: Callable[[argparse.Namespace], int] = args._run
        return run(args)


def build_registry(
    subsystems: Sequence[str] = SUBSYSTEMS,
) -> CommandRegistry:
    """The fully-populated registry: every subsystem hook, in order."""
    registry = CommandRegistry()
    for module_name in subsystems:
        module = importlib.import_module(module_name)
        module.register_commands(registry)
    return registry


def main(argv: Sequence[str] | None = None) -> int:
    return build_registry().dispatch(argv)


__all__ = [
    "Command",
    "CommandRegistry",
    "SUBSYSTEMS",
    "build_registry",
    "main",
]
