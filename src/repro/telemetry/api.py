"""The public instrumentation surface: :class:`TraceConfig` and :func:`observe`.

One object configures telemetry everywhere.  A :class:`TraceConfig` can be

* handed to :func:`observe` to instrument a ``with`` block ambiently —
  every driver, runtime, executor, DFS, and chaos campaign running inside
  the block emits into one span tree::

      with repro.observe() as obs:
          result = repro.invert(a)
      print(obs.render_timeline())
      print(obs.metrics.format())

* threaded through any of the engine's configuration objects
  (``InversionConfig(telemetry=...)``, ``RuntimeConfig(telemetry=...)``,
  ``JobConf(telemetry=...)``, ``Pipeline(telemetry=...)``) when ambient
  scoping is too coarse — an explicit config always wins over the ambient
  tracer.

A single ``TraceConfig`` owns a single lazily-created
:class:`~repro.telemetry.spans.Tracer` (and through it a
:class:`~repro.telemetry.metrics.MetricsRegistry`), so passing the same
config to several components funnels them into the same trace tree.
"""

from __future__ import annotations

import contextvars
import pathlib
from dataclasses import dataclass, field
from typing import IO, TYPE_CHECKING, Any

from .exporters import JsonLinesExporter, SpanExporter
from .metrics import MetricsRegistry
from .spans import (
    NULL_TRACER,
    NullTracer,
    Tracer,
    activate,
    current_tracer,
    deactivate,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .reconcile import ReconciliationReport


@dataclass
class TraceConfig:
    """Declarative telemetry configuration.

    Attributes
    ----------
    enabled:
        Master switch.  ``False`` resolves to the no-op tracer: no spans,
        no metrics, no allocations on the hot path.
    trace_id:
        Fixed trace ID (random when ``None``) — set it to correlate a run
        with an external system's ID.
    jsonl_path:
        When set, every finished span is also streamed to this file as one
        JSON object per line (:class:`~repro.telemetry.exporters.JsonLinesExporter`).
    exporters:
        Additional exporters to attach.
    """

    enabled: bool = True
    trace_id: str | None = None
    jsonl_path: str | pathlib.Path | None = None
    exporters: tuple[SpanExporter, ...] = ()
    _tracer: "Tracer | None" = field(
        default=None, repr=False, compare=False, init=False
    )

    def tracer(self) -> "Tracer | NullTracer":
        """The (lazily created, cached) tracer this config describes."""
        if not self.enabled:
            return NULL_TRACER
        if self._tracer is None:
            exporters = tuple(self.exporters)
            if self.jsonl_path is not None:
                exporters += (JsonLinesExporter(self.jsonl_path),)
            self._tracer = Tracer(trace_id=self.trace_id, exporters=exporters)
        return self._tracer

    def __getstate__(self) -> dict:
        # The cached tracer is a live driver-side object (locks, exporter
        # sinks) that must never cross a process boundary; a pickled config
        # stays declarative and re-creates its tracer lazily.  Workers run
        # under the no-op tracer regardless — spans for remote attempts are
        # recorded driver-side.
        state = self.__dict__.copy()
        state["_tracer"] = None
        return state


def resolve_tracer(config: "TraceConfig | None") -> "Tracer | NullTracer":
    """The tracer a component should emit into: the config's own tracer when
    one is given, else whatever :func:`observe` (or an enclosing span)
    activated, else the disabled tracer."""
    if config is not None:
        return config.tracer()
    return current_tracer()


class Observation:
    """Handle yielded by :func:`observe`: the live read path for one block.

    Exposes the tracer, its spans and metrics, and the common renderings so
    callers rarely need to touch the lower layers.
    """

    def __init__(self, config: TraceConfig) -> None:
        self.config = config
        self.tracer = config.tracer()
        self._token: contextvars.Token[Any] | None = None

    # -- context management ----------------------------------------------------

    def __enter__(self) -> "Observation":
        self._token = activate(self.tracer)
        return self

    def __exit__(self, *exc: object) -> None:
        if self._token is not None:
            deactivate(self._token)
            self._token = None
        if isinstance(self.tracer, Tracer):
            self.tracer.close()

    # -- read path -------------------------------------------------------------

    @property
    def spans(self) -> list[Any]:
        return self.tracer.spans

    @property
    def metrics(self) -> MetricsRegistry:
        return self.tracer.metrics

    @property
    def trace_id(self) -> str:
        return self.tracer.trace_id

    def render_tree(self, **kwargs: Any) -> str:
        from .timeline import render_tree

        return render_tree(self.spans, **kwargs)

    def render_timeline(self, **kwargs: Any) -> str:
        from .timeline import render_timeline

        return render_timeline(self.spans, **kwargs)

    def render_critical_path(self) -> str:
        from .timeline import render_critical_path

        return render_critical_path(self.spans)

    def reconcile(
        self,
        result: Any,
        *,
        dfs: Any = None,
        replication_factor: int | None = None,
        tolerance: float | None = None,
    ) -> "ReconciliationReport":
        """Audit an :class:`~repro.inversion.driver.InversionResult` captured
        inside this observation (spans vs Counters vs the DFS ledger, 1%
        default tolerance).  Pass the run's ``dfs`` (or an explicit
        ``replication_factor``) so ledger writes — which count every replica —
        can be explained; with neither, a factor of 1 is assumed.
        """
        from .reconcile import (
            DEFAULT_TOLERANCE,
            dfs_replication_factor,
            reconcile_run,
        )

        if replication_factor is None:
            replication_factor = dfs_replication_factor(dfs) if dfs is not None else 1
        return reconcile_run(
            self.spans,
            result.record,
            io=result.io,
            replication_factor=replication_factor,
            expected_job_count=result.num_jobs,
            tolerance=DEFAULT_TOLERANCE if tolerance is None else tolerance,
        )


def observe(
    config: TraceConfig | None = None,
    *,
    jsonl: str | pathlib.Path | IO[str] | None = None,
) -> Observation:
    """Instrument everything inside a ``with`` block.

    >>> import numpy as np, repro
    >>> with repro.observe() as obs:
    ...     _ = repro.invert(np.eye(8))
    >>> len(obs.spans) > 0
    True
    """
    if config is None:
        exporters: tuple[SpanExporter, ...] = ()
        jsonl_path: str | pathlib.Path | None = None
        if isinstance(jsonl, (str, pathlib.Path)):
            jsonl_path = jsonl
        elif jsonl is not None:
            exporters = (JsonLinesExporter(jsonl),)
        config = TraceConfig(jsonl_path=jsonl_path, exporters=exporters)
    elif jsonl is not None:
        raise ValueError("pass jsonl via TraceConfig when supplying a config")
    return Observation(config)


__all__ = ["Observation", "TraceConfig", "observe", "resolve_tracer"]
