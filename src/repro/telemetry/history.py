"""Job history reporting — a JobTracker-UI-style summary of executed jobs.

Renders what a Hadoop operator would read off the job history server: per-job
task counts, failures and retries, I/O volumes, and wall time, plus pipeline
totals.  Works from a runtime's history or any list of
:class:`~repro.mapreduce.types.JobResult`.

Lives in :mod:`repro.telemetry` (the run-accounting read path) as of the
telemetry subsystem; ``repro.mapreduce.history`` remains as a deprecated
alias.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..mapreduce.types import JobResult


@dataclass
class JobSummary:
    """One row of the history report."""

    name: str
    job_id: str
    map_tasks: int
    reduce_tasks: int
    attempts_launched: int
    attempts_failed: int
    bytes_read: int
    bytes_written: int
    bytes_shuffled: int
    flops: float
    wall_seconds: float

    @staticmethod
    def of(job: "JobResult") -> "JobSummary":
        traces = job.traces
        return JobSummary(
            name=job.name,
            job_id=str(job.job_id),
            map_tasks=len(job.map_traces),
            reduce_tasks=len(job.reduce_traces),
            attempts_launched=job.attempts_launched,
            attempts_failed=job.attempts_failed,
            bytes_read=sum(t.bytes_read for t in traces),
            bytes_written=sum(t.bytes_written for t in traces),
            bytes_shuffled=sum(t.bytes_shuffled for t in traces),
            flops=sum(t.flops for t in traces),
            wall_seconds=job.wall_seconds,
        )


@dataclass
class HistoryReport:
    jobs: list[JobSummary]

    @staticmethod
    def of(results: "list[JobResult]") -> "HistoryReport":
        return HistoryReport([JobSummary.of(j) for j in results])

    @property
    def total_bytes_read(self) -> int:
        return sum(j.bytes_read for j in self.jobs)

    @property
    def total_bytes_written(self) -> int:
        return sum(j.bytes_written for j in self.jobs)

    @property
    def total_failed_attempts(self) -> int:
        return sum(j.attempts_failed for j in self.jobs)

    @property
    def total_flops(self) -> float:
        return sum(j.flops for j in self.jobs)

    def format(self) -> str:
        from ..experiments.report import bytes_human, format_table

        rows = [
            [
                j.job_id,
                j.name,
                f"{j.map_tasks}m/{j.reduce_tasks}r",
                j.attempts_failed,
                bytes_human(j.bytes_read),
                bytes_human(j.bytes_written),
                bytes_human(j.bytes_shuffled),
                f"{j.wall_seconds:.2f}s",
            ]
            for j in self.jobs
        ]
        table = format_table(
            ["job", "name", "tasks", "failed", "read", "written", "shuffled", "wall"],
            rows,
            title="Job history",
        )
        return (
            table
            + f"\ntotals: {len(self.jobs)} jobs, "
            + f"read {bytes_human(self.total_bytes_read)}, "
            + f"written {bytes_human(self.total_bytes_written)}, "
            + f"{self.total_failed_attempts} failed attempts"
        )


__all__ = ["HistoryReport", "JobSummary"]
