"""Cross-checking span totals against Counters, IOStats, and the Table-1 model.

Telemetry that cannot be trusted is worse than none, so the subsystem ships
its own auditor.  Three independent accounting layers observe every run:

1. **spans** — per-task-attempt byte attributes recorded by the tracer;
2. **Counters** — the engine's Hadoop-style per-job counter groups;
3. **IOStats** — the DFS's byte-level ledger (which also sees replication
   traffic and master-side I/O).

:func:`reconcile_run` checks that (1) and (2) agree *per job* to within a
tolerance (default 1%), that the job-span count matches the paper's
``2^d + 1`` formula, and that run-level span totals explain the DFS ledger
once the replication factor is applied.  Optionally the LU-stage totals are
also compared against the paper's Table 1 closed forms (the analytic cost
model), the same envelope check :mod:`repro.experiments.table1` performs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Sequence

from .spans import Span, SpanKind

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..dfs.iostats import IOSnapshot
    from ..mapreduce.pipeline import PipelineRecord

#: Per-job span-vs-counter tolerance demanded by default (1%).
DEFAULT_TOLERANCE = 0.01

#: Acceptance envelope for measured/model ratios against Table 1.  Factor
#: files are stored as dense squares rather than packed triangles, so reads
#: legitimately run up to ~2x the model (see repro.experiments.table1).
MODEL_RATIO_BOUNDS = (0.5, 3.0)


def dfs_replication_factor(dfs: object) -> int:
    """Effective write amplification of a DFS: each logical write lands on
    ``min(replication, alive datanodes)`` disks."""
    blocks = getattr(dfs, "blocks", None)
    if blocks is None:
        return 1
    alive = sum(1 for dn in blocks.datanodes if dn.alive)
    return max(1, min(blocks.replication, alive))


def _delta(measured: int, reference: int) -> float:
    """Relative disagreement |measured - reference| / reference (0 when both
    are zero, 1 when only the reference is zero)."""
    if reference == 0:
        return 0.0 if measured == 0 else 1.0
    return abs(measured - reference) / reference


@dataclass
class JobReconciliation:
    """Span-vs-counter agreement for one job."""

    job_id: str
    name: str
    span_id: str
    span_bytes_read: int = 0
    span_bytes_written: int = 0
    counter_bytes_read: int = 0
    counter_bytes_written: int = 0

    @property
    def read_delta(self) -> float:
        return _delta(self.span_bytes_read, self.counter_bytes_read)

    @property
    def write_delta(self) -> float:
        return _delta(self.span_bytes_written, self.counter_bytes_written)

    def within(self, tolerance: float) -> bool:
        return self.read_delta <= tolerance and self.write_delta <= tolerance


@dataclass
class TotalsReconciliation:
    """Run-level DFS spans vs the DFS ledger.

    Sums the byte attributes of every ``dfs.read``/``dfs.write`` span (plus
    repair-span copy traffic) — the tracer's own view of the filesystem — and
    compares against the :class:`~repro.dfs.iostats.IOSnapshot` delta.
    """

    span_bytes_read: int = 0
    span_bytes_written: int = 0
    repair_bytes: int = 0
    iostats_bytes_read: int = 0
    iostats_bytes_written: int = 0
    replication_factor: int = 1
    cache_bytes_requested: int = 0
    cache_bytes_served: int = 0
    cache_bytes_missed: int = 0
    bytes_staged: int = 0
    bytes_published: int = 0
    bytes_discarded: int = 0

    @property
    def read_delta(self) -> float:
        return _delta(self.span_bytes_read, self.iostats_bytes_read)

    @property
    def commit_delta(self) -> float:
        """Two-phase commit conservation: at quiescence every staged byte
        was either published (sealed onto its final path) or discarded
        (aborted attempt, losing duplicate, fsck rollback) —
        ``staged == published + discarded`` exactly."""
        return _delta(
            self.bytes_staged, self.bytes_published + self.bytes_discarded
        )

    @property
    def cache_delta(self) -> float:
        """Decoded-block cache conservation: every logical byte requested
        through a cache-backed reader is either served from memory or read
        through the DFS — ``requested == served + missed`` exactly."""
        return _delta(
            self.cache_bytes_requested,
            self.cache_bytes_served + self.cache_bytes_missed,
        )

    @property
    def write_delta(self) -> float:
        """Spans record logical bytes; the DFS ledger records every replica
        (and repair copies are already replica-level)."""
        return _delta(
            self.span_bytes_written * self.replication_factor + self.repair_bytes,
            self.iostats_bytes_written,
        )

    def within(self, tolerance: float) -> bool:
        return (
            self.read_delta <= tolerance
            and self.write_delta <= tolerance
            and self.cache_delta <= tolerance
            and self.commit_delta <= tolerance
        )


@dataclass
class ModelCheck:
    """Measured LU-stage I/O against the Table 1 closed forms."""

    read_ratio: float
    write_ratio: float

    @property
    def ok(self) -> bool:
        lo, hi = MODEL_RATIO_BOUNDS
        return lo <= self.read_ratio <= hi and lo <= self.write_ratio <= hi


@dataclass
class ReconciliationReport:
    """Everything :func:`reconcile_run` verified, with a single verdict."""

    jobs: list[JobReconciliation] = field(default_factory=list)
    totals: TotalsReconciliation | None = None
    model: ModelCheck | None = None
    job_span_count: int = 0
    expected_job_count: int | None = None
    tolerance: float = DEFAULT_TOLERANCE
    problems: list[str] = field(default_factory=list)

    @property
    def job_count_ok(self) -> bool:
        return (
            self.expected_job_count is None
            or self.job_span_count == self.expected_job_count
        )

    @property
    def ok(self) -> bool:
        return (
            not self.problems
            and self.job_count_ok
            and all(j.within(self.tolerance) for j in self.jobs)
            and (self.totals is None or self.totals.within(self.tolerance))
            and (self.model is None or self.model.ok)
        )

    def format(self) -> str:
        pct = self.tolerance * 100.0
        lines = [f"reconciliation (tolerance {pct:.1f}%):"]
        if self.expected_job_count is not None:
            mark = "ok" if self.job_count_ok else "FAIL"
            lines.append(
                f"  [{mark:>4}] job spans: {self.job_span_count} "
                f"(expected 2^d + 1 = {self.expected_job_count})"
            )
        for job in self.jobs:
            mark = "ok" if job.within(self.tolerance) else "FAIL"
            lines.append(
                f"  [{mark:>4}] {job.name:24s} read {job.span_bytes_read:>12,} "
                f"vs {job.counter_bytes_read:>12,} ({job.read_delta * 100:5.2f}%)  "
                f"write {job.span_bytes_written:>12,} "
                f"vs {job.counter_bytes_written:>12,} ({job.write_delta * 100:5.2f}%)"
            )
        if self.totals is not None:
            t = self.totals
            mark = "ok" if t.within(self.tolerance) else "FAIL"
            lines.append(
                f"  [{mark:>4}] run totals vs DFS ledger: "
                f"read {t.span_bytes_read:,} vs {t.iostats_bytes_read:,} "
                f"({t.read_delta * 100:.2f}%), write {t.span_bytes_written:,} "
                f"x{t.replication_factor} replicas vs {t.iostats_bytes_written:,} "
                f"({t.write_delta * 100:.2f}%)"
            )
            if t.cache_bytes_requested:
                lines.append(
                    f"  [{mark:>4}] block cache: requested "
                    f"{t.cache_bytes_requested:,} vs served "
                    f"{t.cache_bytes_served:,} + read-through "
                    f"{t.cache_bytes_missed:,} ({t.cache_delta * 100:.2f}%)"
                )
            if t.bytes_staged:
                lines.append(
                    f"  [{mark:>4}] output commit: staged "
                    f"{t.bytes_staged:,} vs published "
                    f"{t.bytes_published:,} + discarded "
                    f"{t.bytes_discarded:,} ({t.commit_delta * 100:.2f}%)"
                )
        if self.model is not None:
            mark = "ok" if self.model.ok else "FAIL"
            lo, hi = MODEL_RATIO_BOUNDS
            lines.append(
                f"  [{mark:>4}] Table-1 model: measured/model read "
                f"{self.model.read_ratio:.2f}, write {self.model.write_ratio:.2f} "
                f"(envelope [{lo}, {hi}]; dense-square factor files explain "
                f"reads up to ~2x)"
            )
        for problem in self.problems:
            lines.append(f"  [FAIL] {problem}")
        lines.append(f"  verdict: {'PASS' if self.ok else 'FAIL'}")
        return "\n".join(lines)


def _committed_task_spans(spans: Sequence[Span]) -> list[Span]:
    return [
        s
        for s in spans
        if s.kind is SpanKind.TASK
        and s.status == "ok"
        and s.attrs.get("committed", False)
    ]


def reconcile_run(
    spans: Sequence[Span],
    record: "PipelineRecord",
    *,
    io: "IOSnapshot | None" = None,
    replication_factor: int = 1,
    expected_job_count: int | None = None,
    model_lu_cost: "tuple[float, float] | None" = None,
    tolerance: float = DEFAULT_TOLERANCE,
) -> ReconciliationReport:
    """Audit one run's spans against its engine-side accounting.

    ``record`` supplies the per-job Counters (and master-phase I/O); ``io``
    the DFS ledger delta for the run; ``model_lu_cost`` the Table-1 closed
    forms as ``(read_bytes, write_bytes)`` for the run's LU stage (pass
    ``None`` to skip the model check).
    """
    from ..mapreduce.counters import BYTES_READ, BYTES_WRITTEN, FILESYSTEM_GROUP

    report = ReconciliationReport(
        tolerance=tolerance, expected_job_count=expected_job_count
    )
    job_spans = [s for s in spans if s.kind is SpanKind.JOB]
    report.job_span_count = len(job_spans)

    # Index committed task spans under their job span (transitively: job ->
    # wave -> task).
    children: dict[str | None, list[Span]] = {}
    for s in spans:
        children.setdefault(s.parent_id, []).append(s)

    def tasks_under(job_span: Span) -> list[Span]:
        out: list[Span] = []
        frontier = [job_span.span_id]
        while frontier:
            nxt: list[str] = []
            for pid in frontier:
                for child in children.get(pid, []):
                    if child.kind is SpanKind.TASK:
                        out.append(child)
                    nxt.append(child.span_id)
            frontier = nxt
        return _committed_task_spans(out)

    by_job_id = {
        str(s.attrs.get("job", "")): s for s in job_spans if s.attrs.get("job")
    }
    for result in record.job_results:
        counters = result.counters
        span = by_job_id.get(str(result.job_id))
        if span is None:
            report.problems.append(
                f"job {result.job_id} ({result.name}) has no job span"
            )
            continue
        row = JobReconciliation(
            job_id=str(result.job_id),
            name=result.name,
            span_id=span.span_id,
            counter_bytes_read=counters.value(FILESYSTEM_GROUP, BYTES_READ),
            counter_bytes_written=counters.value(FILESYSTEM_GROUP, BYTES_WRITTEN),
        )
        for task in tasks_under(span):
            row.span_bytes_read += int(task.attrs.get("bytes_read", 0))
            row.span_bytes_written += int(task.attrs.get("bytes_written", 0))
        report.jobs.append(row)

    if io is not None:
        totals = TotalsReconciliation(replication_factor=replication_factor)
        totals.iostats_bytes_read = io.bytes_read
        totals.iostats_bytes_written = io.bytes_written
        totals.cache_bytes_requested = io.cache_bytes_requested
        totals.cache_bytes_served = io.cache_bytes_served
        totals.cache_bytes_missed = io.cache_bytes_missed
        totals.bytes_staged = io.bytes_staged
        totals.bytes_published = io.bytes_published
        totals.bytes_discarded = io.bytes_discarded
        for span in spans:
            if span.kind is SpanKind.DFS_READ:
                totals.span_bytes_read += int(span.attrs.get("bytes", 0))
            elif span.kind is SpanKind.DFS_WRITE:
                totals.span_bytes_written += int(span.attrs.get("bytes", 0))
            elif span.kind is SpanKind.DFS_REPAIR:
                totals.repair_bytes += int(span.attrs.get("bytes_copied", 0))
        report.totals = totals

    if model_lu_cost is not None:
        model_read, model_write = model_lu_cost
        measured_read = measured_write = 0.0
        final = {r.name for r in record.job_results} & {"invert-final"}
        for row in report.jobs:
            if row.name in final:
                continue  # Table 1 models the LU stage only
            measured_read += row.span_bytes_read
            measured_write += row.span_bytes_written
        for span in spans:
            if span.kind is SpanKind.MASTER_PHASE and not str(
                span.name
            ).startswith("collect-"):
                measured_read += int(span.attrs.get("bytes_read", 0))
                measured_write += int(span.attrs.get("bytes_written", 0))
        report.model = ModelCheck(
            read_ratio=measured_read / model_read if model_read else 0.0,
            write_ratio=measured_write / model_write if model_write else 0.0,
        )
    return report


__all__ = [
    "DEFAULT_TOLERANCE",
    "MODEL_RATIO_BOUNDS",
    "JobReconciliation",
    "ModelCheck",
    "ReconciliationReport",
    "TotalsReconciliation",
    "dfs_replication_factor",
    "reconcile_run",
]
