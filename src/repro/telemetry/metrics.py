"""Counters, gauges, and fixed-bucket histograms behind one registry.

The :class:`MetricsRegistry` is the telemetry subsystem's *metrics* half — the
queryable, exportable successor to reaching into raw
:class:`~repro.mapreduce.counters.Counters` groups and
:class:`~repro.dfs.iostats.IOStats` fields by hand.  Engine counters and DFS
I/O statistics are *absorbed* into the registry under stable dotted names
(``mapreduce.TaskCounters.LAUNCHED_MAPS``, ``dfs.bytes_read``), so one object
answers every "how much" question about a run and round-trips losslessly
through JSON (:meth:`MetricsRegistry.to_dict` /
:meth:`MetricsRegistry.from_dict`).

Histograms use *fixed* bucket boundaries chosen at creation (the Prometheus
model): observation cost is one binary search and one increment, merging two
histograms is element-wise addition, and exported data is comparable across
runs because the boundaries travel with it.
"""

from __future__ import annotations

import bisect
import threading
from typing import TYPE_CHECKING, Any, Iterable, Mapping

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..dfs.iostats import IOSnapshot
    from ..mapreduce.counters import Counters

#: Default duration buckets (seconds): 1 ms .. ~2 min, roughly x4 steps.
DURATION_BUCKETS: tuple[float, ...] = (
    0.001, 0.004, 0.016, 0.064, 0.25, 1.0, 4.0, 16.0, 64.0, 128.0,
)

#: Default size buckets (bytes): 1 KiB .. 4 GiB, x8 steps.
SIZE_BUCKETS: tuple[float, ...] = (
    1024.0, 8192.0, 65536.0, 524288.0, 4194304.0, 33554432.0,
    268435456.0, 2147483648.0, 4294967296.0,
)


class Counter:
    """Monotonically increasing integer metric."""

    __slots__ = ("name", "_value", "_lock")

    def __init__(self, name: str) -> None:
        self.name = name
        self._lock = threading.Lock()
        self._value = 0  # guarded-by: _lock

    def increment(self, amount: int = 1) -> None:
        if amount < 0:
            raise ValueError("counters only go up; use a gauge")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> int:
        with self._lock:
            return self._value


class Gauge:
    """Last-written floating-point metric."""

    __slots__ = ("name", "_value", "_lock")

    def __init__(self, name: str) -> None:
        self.name = name
        self._lock = threading.Lock()
        self._value = 0.0  # guarded-by: _lock

    def set(self, value: float) -> None:
        with self._lock:
            self._value = float(value)

    def add(self, delta: float) -> None:
        with self._lock:
            self._value += float(delta)

    @property
    def value(self) -> float:
        with self._lock:
            return self._value


class Histogram:
    """Fixed-boundary histogram: counts per bucket plus sum and count.

    ``boundaries`` are the *upper* edges of the finite buckets; one implicit
    overflow bucket catches everything larger.  Boundaries are immutable for
    the histogram's lifetime so exports from different processes merge.
    """

    __slots__ = ("name", "boundaries", "bucket_counts", "total", "count", "_lock")

    def __init__(self, name: str, boundaries: Iterable[float]) -> None:
        bounds = tuple(float(b) for b in boundaries)
        if not bounds:
            raise ValueError("histogram needs at least one bucket boundary")
        if list(bounds) != sorted(bounds) or len(set(bounds)) != len(bounds):
            raise ValueError("bucket boundaries must be strictly increasing")
        self.name = name
        self.boundaries = bounds  # immutable; shared lock-free
        self._lock = threading.Lock()
        self.bucket_counts = [0] * (len(bounds) + 1)  # guarded-by: _lock
        self.total = 0.0  # guarded-by: _lock
        self.count = 0  # guarded-by: _lock

    def observe(self, value: float) -> None:
        idx = bisect.bisect_left(self.boundaries, value)
        with self._lock:
            self.bucket_counts[idx] += 1
            self.total += value
            self.count += 1

    @property
    def mean(self) -> float:
        with self._lock:
            return self.total / self.count if self.count else 0.0

    def snapshot_state(self) -> dict[str, Any]:
        """Locked copy of the histogram's state, in the wire format used by
        :meth:`MetricsRegistry.to_dict` (CN001 — the registry previously
        read ``bucket_counts``/``total``/``count`` without this lock, so a
        concurrent ``observe`` could export a torn snapshot)."""
        with self._lock:
            return {
                "boundaries": list(self.boundaries),
                "bucket_counts": list(self.bucket_counts),
                "total": self.total,
                "count": self.count,
            }

    def restore_state(
        self, bucket_counts: Iterable[int], total: float, count: int
    ) -> None:
        """Locked overwrite of the mutable state (import path)."""
        with self._lock:
            self.bucket_counts = [int(c) for c in bucket_counts]
            self.total = float(total)
            self.count = int(count)

    def add_counts(
        self, bucket_counts: Iterable[int], total: float, count: int
    ) -> None:
        """Locked element-wise merge of another histogram's state (CN002 —
        the registry previously incremented the buckets directly)."""
        with self._lock:
            for idx, bucket in enumerate(bucket_counts):
                self.bucket_counts[idx] += int(bucket)
            self.total += float(total)
            self.count += int(count)

    def quantile(self, q: float) -> float:
        """Approximate quantile: the upper boundary of the bucket holding the
        q-th observation (conservative, like Prometheus' histogram_quantile)."""
        if not 0.0 <= q <= 1.0:
            raise ValueError("q must be in [0, 1]")
        with self._lock:
            if not self.count:
                return 0.0
            rank = q * self.count
            seen = 0
            for idx, n in enumerate(self.bucket_counts):
                seen += n
                if seen >= rank and n:
                    if idx < len(self.boundaries):
                        return self.boundaries[idx]
                    return self.boundaries[-1]
        return self.boundaries[-1]


class MetricsRegistry:
    """Thread-safe name-keyed home for counters, gauges, and histograms.

    Metric access is get-or-create: ``registry.counter("jobs")`` returns the
    same object every call, so instrumentation sites need no setup phase.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: dict[str, Counter] = {}  # guarded-by: _lock
        self._gauges: dict[str, Gauge] = {}  # guarded-by: _lock
        self._histograms: dict[str, Histogram] = {}  # guarded-by: _lock

    # -- get-or-create ---------------------------------------------------------

    def counter(self, name: str) -> Counter:
        with self._lock:
            found = self._counters.get(name)
            if found is None:
                found = self._counters[name] = Counter(name)
            return found

    def gauge(self, name: str) -> Gauge:
        with self._lock:
            found = self._gauges.get(name)
            if found is None:
                found = self._gauges[name] = Gauge(name)
            return found

    def histogram(
        self, name: str, boundaries: Iterable[float] = DURATION_BUCKETS
    ) -> Histogram:
        with self._lock:
            found = self._histograms.get(name)
            if found is None:
                found = self._histograms[name] = Histogram(name, boundaries)
            return found

    # -- absorption of legacy accounting --------------------------------------

    def absorb_counters(self, counters: "Counters", prefix: str = "mapreduce") -> None:
        """Fold a job's :class:`~repro.mapreduce.counters.Counters` groups in
        as ``<prefix>.<group>.<name>`` counters (summing across jobs)."""
        for group, names in counters.as_dict().items():
            for name, value in names.items():
                self.counter(f"{prefix}.{group}.{name}").increment(value)

    def absorb_iostats(self, snapshot: "IOSnapshot", prefix: str = "dfs") -> None:
        """Record a DFS :class:`~repro.dfs.iostats.IOSnapshot` as gauges
        (``dfs.bytes_read``, ``dfs.bytes_transferred``, ...)."""
        for field_name in (
            "bytes_read",
            "bytes_written",
            "bytes_transferred",
            "files_created",
            "files_opened",
            "files_deleted",
            "read_ops",
            "write_ops",
            "repair_copies",
            "corrupt_replicas_dropped",
            "cache_hits",
            "cache_misses",
            "cache_bytes_requested",
            "cache_bytes_served",
            "cache_bytes_missed",
        ):
            self.gauge(f"{prefix}.{field_name}").set(
                float(getattr(snapshot, field_name))
            )

    # -- export / import -------------------------------------------------------

    def to_dict(self) -> dict[str, Any]:
        """JSON-serializable snapshot of every metric (stable key order)."""
        with self._lock:
            counters = {n: c.value for n, c in sorted(self._counters.items())}
            gauges = {n: g.value for n, g in sorted(self._gauges.items())}
            histograms = {
                n: h.snapshot_state()
                for n, h in sorted(self._histograms.items())
            }
        return {"counters": counters, "gauges": gauges, "histograms": histograms}

    @staticmethod
    def from_dict(data: Mapping[str, Any]) -> "MetricsRegistry":
        """Rebuild a registry from :meth:`to_dict` output (exact round-trip)."""
        registry = MetricsRegistry()
        for name, value in data.get("counters", {}).items():
            registry.counter(name).increment(int(value))
        for name, value in data.get("gauges", {}).items():
            registry.gauge(name).set(float(value))
        for name, spec in data.get("histograms", {}).items():
            hist = registry.histogram(name, spec["boundaries"])
            hist.restore_state(
                spec["bucket_counts"], spec["total"], spec["count"]
            )
        return registry

    def merge(self, other: "MetricsRegistry") -> None:
        """Fold ``other`` into this registry (counters/histograms add,
        gauges take the other's value)."""
        snap = other.to_dict()
        for name, value in snap["counters"].items():
            self.counter(name).increment(int(value))
        for name, value in snap["gauges"].items():
            self.gauge(name).set(float(value))
        for name, spec in snap["histograms"].items():
            hist = self.histogram(name, spec["boundaries"])
            if list(hist.boundaries) != list(spec["boundaries"]):
                raise ValueError(
                    f"histogram {name!r}: boundary mismatch, cannot merge"
                )
            hist.add_counts(spec["bucket_counts"], spec["total"], spec["count"])

    def format(self) -> str:
        """Human-readable dump, one metric per line."""
        snap = self.to_dict()
        lines: list[str] = []
        for name, value in snap["counters"].items():
            lines.append(f"counter   {name} = {value}")
        for name, value in snap["gauges"].items():
            lines.append(f"gauge     {name} = {value:g}")
        for name, spec in snap["histograms"].items():
            count = spec["count"]
            mean = spec["total"] / count if count else 0.0
            lines.append(f"histogram {name}: count={count} mean={mean:.4g}")
        return "\n".join(lines)


__all__ = [
    "Counter",
    "DURATION_BUCKETS",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "SIZE_BUCKETS",
]
