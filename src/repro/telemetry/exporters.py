"""Span exporters: where finished spans go.

Exporters receive each span exactly once, when it ends (parents therefore
arrive *after* their children — reconstruct trees by ``parent_id``, not by
arrival order).  Three are provided:

* :class:`InMemoryExporter` — keeps spans in a list; the default for tests
  and programmatic inspection;
* :class:`JsonLinesExporter` — one JSON object per line to a file or
  file-like object, the interchange format ``python -m repro trace --jsonl``
  writes and :func:`read_jsonl` loads back;
* :class:`TimelineExporter` — collects spans and renders the human Gantt
  timeline (:mod:`repro.telemetry.timeline`) on close.
"""

from __future__ import annotations

import io
import json
import pathlib
import threading
from typing import IO, Iterable, Protocol

from .spans import Span


class SpanExporter(Protocol):
    """The exporter protocol: ``on_end`` per span, ``close`` at shutdown."""

    def on_end(self, span: Span) -> None: ...  # noqa: E704 - protocol stub

    def close(self) -> None: ...  # noqa: E704 - protocol stub


class InMemoryExporter:
    """Collect finished spans in a list."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self.spans: list[Span] = []  # guarded-by: _lock

    def on_end(self, span: Span) -> None:
        with self._lock:
            self.spans.append(span)

    def snapshot(self) -> list[Span]:
        """Locked copy of the collected spans (safe to read while a run is
        still finishing spans on worker threads)."""
        with self._lock:
            return list(self.spans)

    def close(self) -> None:
        return None


class JsonLinesExporter:
    """Write each finished span as one JSON line.

    Accepts a path (opened lazily, closed by :meth:`close`) or any writable
    text stream (left open — the caller owns it).
    """

    def __init__(self, target: str | pathlib.Path | IO[str]) -> None:
        self._lock = threading.Lock()
        if isinstance(target, (str, pathlib.Path)):
            self._stream: IO[str] | None = None  # guarded-by: _lock
            self._path: pathlib.Path | None = pathlib.Path(target)
            self._owns_stream = True
        else:
            self._stream = target  # guarded-by: _lock
            self._path = None
            self._owns_stream = False
        self.spans_written = 0  # guarded-by: _lock

    def _ensure_stream(self) -> IO[str]:  # requires-lock: _lock
        if self._stream is None:
            assert self._path is not None
            self._path.parent.mkdir(parents=True, exist_ok=True)
            self._stream = self._path.open("w", encoding="utf-8")
        return self._stream

    def on_end(self, span: Span) -> None:
        line = json.dumps(span.to_dict(), sort_keys=True, default=str)
        with self._lock:
            stream = self._ensure_stream()
            stream.write(line + "\n")
            self.spans_written += 1

    def close(self) -> None:
        with self._lock:
            if self._stream is not None:
                self._stream.flush()
                if self._owns_stream:
                    self._stream.close()
                    self._stream = None


class TimelineExporter:
    """Buffer spans and render a human-readable timeline on close."""

    def __init__(self, stream: IO[str] | None = None, width: int = 64) -> None:
        self._lock = threading.Lock()
        self.spans: list[Span] = []  # guarded-by: _lock
        self.width = width
        self._stream = stream

    def on_end(self, span: Span) -> None:
        with self._lock:
            self.spans.append(span)

    def render(self) -> str:
        from .timeline import render_timeline

        with self._lock:
            spans = list(self.spans)
        return render_timeline(spans, width=self.width)

    def close(self) -> None:
        if self._stream is not None:
            self._stream.write(self.render() + "\n")
            self._stream.flush()


def read_jsonl(source: str | pathlib.Path | IO[str]) -> list[Span]:
    """Load spans written by :class:`JsonLinesExporter`."""
    if isinstance(source, (str, pathlib.Path)):
        text = pathlib.Path(source).read_text(encoding="utf-8")
        stream: IO[str] = io.StringIO(text)
    else:
        stream = source
    spans: list[Span] = []
    for line in stream:
        line = line.strip()
        if line:
            spans.append(Span.from_dict(json.loads(line)))
    return spans


def export_all(spans: Iterable[Span], exporter: SpanExporter) -> None:
    """Replay already-finished spans through an exporter (used to produce a
    ``--jsonl`` file after the fact from an in-memory tracer)."""
    for span in spans:
        exporter.on_end(span)
    exporter.close()


__all__ = [
    "InMemoryExporter",
    "JsonLinesExporter",
    "SpanExporter",
    "TimelineExporter",
    "export_all",
    "read_jsonl",
]
