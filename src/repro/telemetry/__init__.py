"""Tracing and metrics for the whole stack (the run-accounting read path).

The paper's evaluation (Section 7, Tables 1-3, Figures 6-8) is an exercise in
*measuring* the pipeline — per-job I/O, transfer volume, task timing.  This
subsystem makes those measurements first-class instead of scattered across
``Counters``, ``iostats``, and log scraping:

* **spans** (:mod:`.spans`) — hierarchical timed regions
  (``run → job → wave → task attempt``, plus master phases and DFS
  read/write/repair operations) carrying trace/span IDs and attributes;
* **metrics** (:mod:`.metrics`) — a :class:`MetricsRegistry` of counters,
  gauges, and fixed-bucket histograms that absorbs engine ``Counters`` and
  DFS ``IOStats`` under stable dotted names;
* **exporters** (:mod:`.exporters`) — in-memory, JSON-lines, and timeline
  outputs;
* **reconciliation** (:mod:`.reconcile`) — the auditor proving span totals
  agree with the engine's counters, the DFS ledger, and the paper's Table-1
  cost model;
* **CLI** — ``python -m repro trace`` renders a per-job Gantt timeline,
  the critical path, and the reconciliation verdict for a live run.

Everything hangs off one public entry point::

    with repro.observe() as obs:
        result = repro.invert(a)
    print(obs.render_timeline())
    print(obs.reconcile(result).format())

Telemetry is **zero-cost when disabled**: outside ``observe`` (and without an
explicit :class:`TraceConfig`) every instrumentation site sees the no-op
tracer, checks one flag, and allocates nothing.
"""

from .api import Observation, TraceConfig, observe, resolve_tracer
from .exporters import (
    InMemoryExporter,
    JsonLinesExporter,
    SpanExporter,
    TimelineExporter,
    read_jsonl,
)
from .history import HistoryReport, JobSummary
from .metrics import (
    Counter,
    DURATION_BUCKETS,
    Gauge,
    Histogram,
    MetricsRegistry,
    SIZE_BUCKETS,
)
from .reconcile import (
    JobReconciliation,
    ModelCheck,
    ReconciliationReport,
    TotalsReconciliation,
    reconcile_run,
)
from .spans import (
    NULL_TRACER,
    NullTracer,
    Span,
    SpanKind,
    Tracer,
    current_span,
    current_tracer,
)
from .timeline import (
    critical_path,
    render_critical_path,
    render_timeline,
    render_tree,
)

__all__ = [
    "DURATION_BUCKETS",
    "NULL_TRACER",
    "SIZE_BUCKETS",
    "Counter",
    "Gauge",
    "Histogram",
    "HistoryReport",
    "InMemoryExporter",
    "JobReconciliation",
    "JobSummary",
    "JsonLinesExporter",
    "MetricsRegistry",
    "ModelCheck",
    "NullTracer",
    "Observation",
    "ReconciliationReport",
    "Span",
    "SpanExporter",
    "SpanKind",
    "TimelineExporter",
    "TotalsReconciliation",
    "TraceConfig",
    "Tracer",
    "critical_path",
    "current_span",
    "current_tracer",
    "observe",
    "read_jsonl",
    "reconcile_run",
    "render_critical_path",
    "render_timeline",
    "render_tree",
    "resolve_tracer",
]
