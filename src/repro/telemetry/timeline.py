"""Human-readable trace rendering: span trees, Gantt timelines, critical path.

These renderers are what ``python -m repro trace`` prints.  They operate on a
flat list of finished :class:`~repro.telemetry.spans.Span` objects (from a
tracer, an :class:`~repro.telemetry.exporters.InMemoryExporter`, or a JSONL
file) and never touch the engine, so a trace captured on one machine renders
anywhere.
"""

from __future__ import annotations

from typing import Sequence

from .spans import Span, SpanKind

_BAR = "█"
_PAD = "·"


def _children_index(spans: Sequence[Span]) -> dict[str | None, list[Span]]:
    index: dict[str | None, list[Span]] = {}
    for span in spans:
        index.setdefault(span.parent_id, []).append(span)
    for bucket in index.values():
        bucket.sort(key=lambda s: s.start)
    return index


def roots_of(spans: Sequence[Span]) -> list[Span]:
    """Spans with no parent among ``spans`` (usually the run span)."""
    ids = {s.span_id for s in spans}
    return sorted(
        (s for s in spans if s.parent_id is None or s.parent_id not in ids),
        key=lambda s: s.start,
    )


def render_tree(
    spans: Sequence[Span],
    *,
    max_depth: int | None = None,
    skip_kinds: tuple[SpanKind, ...] = (SpanKind.DFS_READ, SpanKind.DFS_WRITE),
) -> str:
    """Indented span tree with durations and I/O attributes."""
    index = _children_index(spans)
    lines: list[str] = []

    def describe(span: Span) -> str:
        extras = []
        for key in ("bytes_read", "bytes_written", "tasks", "node", "attempt"):
            if key in span.attrs:
                extras.append(f"{key}={span.attrs[key]}")
        status = "" if span.status == "ok" else f"  !! {span.error}"
        suffix = f"  [{', '.join(extras)}]" if extras else ""
        return (
            f"{span.name} ({span.kind.value}) {span.duration * 1e3:.1f}ms"
            f"{suffix}{status}"
        )

    def walk(span: Span, depth: int) -> None:
        if span.kind in skip_kinds:
            return
        lines.append("  " * depth + describe(span))
        if max_depth is not None and depth + 1 > max_depth:
            return
        for child in index.get(span.span_id, []):
            walk(child, depth + 1)

    for root in roots_of(spans):
        walk(root, 0)
    return "\n".join(lines)


def render_timeline(
    spans: Sequence[Span],
    *,
    width: int = 64,
    kinds: tuple[SpanKind, ...] = (SpanKind.JOB, SpanKind.MASTER_PHASE),
) -> str:
    """Gantt chart over the run: one bar per job / master phase.

    Bars are positioned on a shared clock (the earliest span start is t=0),
    so serialization between jobs and master phases is visible at a glance.
    """
    rows = sorted((s for s in spans if s.kind in kinds), key=lambda s: s.start)
    if not rows:
        return "(no spans to render)"
    t0 = min(s.start for s in rows)
    t1 = max(s.end if s.end is not None else s.start for s in rows)
    total = max(t1 - t0, 1e-9)
    name_width = min(max(len(s.name) for s in rows), 28)
    lines = [
        f"timeline: {len(rows)} steps over {total:.3f}s "
        f"(each column = {total / width * 1e3:.2f}ms)"
    ]
    for span in rows:
        end = span.end if span.end is not None else span.start
        lo = int((span.start - t0) / total * width)
        hi = max(int((end - t0) / total * width), lo + 1)
        hi = min(hi, width)
        bar = _PAD * lo + _BAR * (hi - lo) + _PAD * (width - hi)
        name = span.name[:name_width].ljust(name_width)
        lines.append(f"  {name} |{bar}| {span.duration * 1e3:8.1f}ms")
    return "\n".join(lines)


def critical_path(spans: Sequence[Span]) -> list[Span]:
    """The chain of spans that determines the run's end time.

    Starting from the root that finishes last, repeatedly descend into the
    child that finishes last — for a serial pipeline this walks run → the
    last job → its last wave → the straggler task, which is exactly the
    paper's "job time is bounded by its slowest task" argument (Section 7.4).
    """
    index = _children_index(spans)

    def end_of(span: Span) -> float:
        return span.end if span.end is not None else span.start

    roots = roots_of(spans)
    if not roots:
        return []
    path: list[Span] = []
    cursor = max(roots, key=end_of)
    while cursor is not None:
        path.append(cursor)
        children = index.get(cursor.span_id, [])
        cursor = max(children, key=end_of) if children else None  # type: ignore[assignment]
    return path


def render_critical_path(spans: Sequence[Span]) -> str:
    """Critical path with per-hop durations and share of the run."""
    path = critical_path(spans)
    if not path:
        return "(no spans)"
    total = max(path[0].duration, 1e-9)
    lines = ["critical path (slowest descent from the run span):"]
    for span in path:
        share = span.duration / total * 100.0
        lines.append(
            f"  {span.kind.value:13s} {span.name[:40]:40s} "
            f"{span.duration * 1e3:9.1f}ms  ({share:5.1f}% of run)"
        )
    return "\n".join(lines)


__all__ = [
    "critical_path",
    "render_critical_path",
    "render_timeline",
    "render_tree",
    "roots_of",
]
