"""``python -m repro trace`` — run an inversion with telemetry and render it.

Examples::

    python -m repro trace --n 256 --nb 25          # timeline + reconciliation
    python -m repro trace --n 96 --nb 24 --tasks   # include per-task rows
    python -m repro trace --jsonl run.jsonl        # also dump spans as JSONL
    python -m repro trace --json                   # machine-readable summary

The command runs one end-to-end inversion inside :func:`repro.observe`,
prints the span-tree summary, the per-job Gantt timeline, the critical path,
and the reconciliation report (span totals vs Counters vs the DFS ledger vs
the Table-1 cost model).  Exit status is 0 iff every reconciliation check
passes — the CI gate behind ``make trace-demo``.
"""

from __future__ import annotations

import argparse
import json
from typing import TYPE_CHECKING, Any, Sequence

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..inversion.driver import InversionResult
    from .api import Observation
    from .reconcile import ReconciliationReport


def run_traced_inversion(
    *,
    n: int,
    nb: int,
    m0: int,
    seed: int = 0,
    executor: str = "serial",
    schedule: str = "barrier",
    jsonl: str | None = None,
    tolerance: float = 0.01,
) -> "tuple[Observation, InversionResult, ReconciliationReport]":
    """One observed inversion plus its reconciliation report."""
    from ..cluster.costmodel import BYTES_PER_ELEMENT, ours_lu_cost
    from ..inversion import InversionConfig, MatrixInverter
    from ..inversion.plan import is_full_tree, total_job_count
    from ..mapreduce import MapReduceRuntime, RuntimeConfig
    from ..workloads.generators import random_dense
    from .api import TraceConfig, observe
    from .reconcile import dfs_replication_factor, reconcile_run

    a = random_dense(n, seed=seed)
    runtime = MapReduceRuntime(
        config=RuntimeConfig(num_workers=m0, executor=executor)
    )
    obs = observe(TraceConfig(jsonl_path=jsonl))
    try:
        with obs:
            inverter = MatrixInverter(
                config=InversionConfig(nb=nb, m0=m0, schedule=schedule),
                runtime=runtime,
            )
            result = inverter.invert(a)
    finally:
        runtime.shutdown()

    expected = (
        total_job_count(n, nb) if is_full_tree(n, nb) else result.plan.num_jobs
    )
    cost = ours_lu_cost(n, m0)
    report = reconcile_run(
        obs.spans,
        result.record,
        io=result.io,
        replication_factor=dfs_replication_factor(runtime.dfs),
        expected_job_count=expected,
        model_lu_cost=(
            cost.read * BYTES_PER_ELEMENT,
            cost.write * BYTES_PER_ELEMENT,
        ),
        tolerance=tolerance,
    )
    return obs, result, report


def _summary_dict(
    obs: "Observation", result: "InversionResult", report: "ReconciliationReport"
) -> dict[str, Any]:
    from .spans import SpanKind

    kinds = {kind.value: 0 for kind in SpanKind}
    for span in obs.spans:
        kinds[span.kind.value] += 1
    return {
        "trace_id": obs.trace_id,
        "ok": report.ok,
        "num_jobs": result.num_jobs,
        "job_spans": report.job_span_count,
        "expected_job_spans": report.expected_job_count,
        "span_counts": {k: v for k, v in kinds.items() if v},
        "jobs": [
            {
                "job_id": row.job_id,
                "name": row.name,
                "span_id": row.span_id,
                "bytes_read": row.span_bytes_read,
                "bytes_written": row.span_bytes_written,
                "read_delta": row.read_delta,
                "write_delta": row.write_delta,
            }
            for row in report.jobs
        ],
        "metrics": obs.metrics.to_dict(),
    }


def main(argv: Sequence[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro trace",
        description="run one inversion with telemetry enabled and render its "
        "span tree, per-job timeline, critical path, and the reconciliation "
        "of span totals against Counters, the DFS ledger, and Table 1",
    )
    parser.add_argument("--n", type=int, default=256, help="matrix order")
    parser.add_argument("--nb", type=int, default=25, help="bound value")
    parser.add_argument("--m0", type=int, default=4, help="workers per job")
    parser.add_argument("--seed", type=int, default=0, help="input matrix seed")
    parser.add_argument(
        "--executor", choices=("serial", "threads", "processes"), default="serial"
    )
    parser.add_argument(
        "--scheduler",
        choices=("barrier", "dataflow"),
        default="barrier",
        help="inter-job scheduling mode (dataflow launches steps on block "
        "availability; reconciliation must close either way)",
    )
    parser.add_argument(
        "--jsonl", metavar="PATH", help="also stream spans to PATH as JSON lines"
    )
    parser.add_argument(
        "--tolerance",
        type=float,
        default=0.01,
        help="relative reconciliation tolerance (default 1%%)",
    )
    parser.add_argument(
        "--tasks", action="store_true", help="show per-task rows in the tree"
    )
    parser.add_argument(
        "--json", action="store_true", help="emit a machine-readable summary"
    )
    args = parser.parse_args(argv)

    obs, result, report = run_traced_inversion(
        n=args.n,
        nb=args.nb,
        m0=args.m0,
        seed=args.seed,
        executor=args.executor,
        schedule=args.scheduler,
        jsonl=args.jsonl,
        tolerance=args.tolerance,
    )

    if args.json:
        print(json.dumps(_summary_dict(obs, result, report), indent=2))
        return 0 if report.ok else 1

    print(
        f"trace {obs.trace_id}: n={args.n} nb={args.nb} m0={args.m0} "
        f"depth={result.plan.depth} jobs={result.num_jobs} "
        f"({len(obs.spans)} spans)"
    )
    print()
    print(obs.render_tree(max_depth=1 if not args.tasks else 3))
    print()
    print(obs.render_timeline())
    print()
    print(obs.render_critical_path())
    print()
    print(report.format())
    return 0 if report.ok else 1


def register_commands(registry: Any) -> None:
    """Hook for the ``python -m repro`` subcommand registry."""
    registry.add_passthrough(
        "trace",
        main,
        help="run an inversion with telemetry and render timeline + "
        "reconciliation; see python -m repro trace --help",
    )


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
