"""Hierarchical spans and the tracer that records them.

A *span* is one timed region of a run — the whole run, one MapReduce job, one
scheduling wave, one task attempt, one DFS operation — carrying a trace ID
(shared by every span of one tree), its own span ID, its parent's span ID,
wall-clock times, and free-form attributes.  The hierarchy mirrors the
pipeline's structure::

    run
    ├── master-phase (write-input, master-lu:..., collect-output)
    ├── job (partition)
    │   ├── wave (map, wave 0)
    │   │   ├── task attempt ── dfs.read / dfs.write spans
    │   │   └── ...
    │   └── wave (reduce, wave 0) ...
    ├── job (lu:/Root/A1) ...
    └── job (invert-final)

Two tracers exist:

* :class:`Tracer` — the real recorder: thread-safe, feeds every finished span
  to its exporters, and keeps an in-memory copy for tree queries;
* :data:`NULL_TRACER` — the disabled recorder.  Its ``enabled`` flag is
  ``False`` and instrumented code checks that flag *before* building
  attribute dictionaries, so a run without telemetry allocates nothing on
  the hot path.

Parenting is ambient within a thread: entering a span makes it the current
parent (a :mod:`contextvars` variable) for spans opened below it.  Worker
threads do not inherit the driver's context, so the engine passes the parent
span explicitly when it crosses an executor boundary (job → wave → task), and
everything *inside* a task attempt (DFS I/O) nests via the task's own thread.
"""

from __future__ import annotations

import contextvars
import enum
import itertools
import threading
import time
import uuid
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Mapping

from .metrics import DURATION_BUCKETS, MetricsRegistry

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .exporters import SpanExporter


class SpanKind(enum.Enum):
    """What a span measures; determines its place in the hierarchy."""

    RUN = "run"
    JOB = "job"
    WAVE = "wave"
    TASK = "task"
    MASTER_PHASE = "master-phase"
    DFS_READ = "dfs.read"
    DFS_WRITE = "dfs.write"
    DFS_REPAIR = "dfs.repair"
    COMMIT = "dfs.commit"
    INTERNAL = "internal"


@dataclass
class Span:
    """One finished (or in-flight) timed region."""

    trace_id: str
    span_id: str
    parent_id: str | None
    name: str
    kind: SpanKind
    start: float = 0.0
    end: float | None = None
    attrs: dict[str, Any] = field(default_factory=dict)
    status: str = "ok"  # "ok" | "error"
    error: str | None = None

    @property
    def duration(self) -> float:
        """Seconds between start and end (0 while still open)."""
        return 0.0 if self.end is None else self.end - self.start

    def set(self, **attrs: Any) -> None:
        """Attach attributes (bytes moved, task index, node, ...)."""
        self.attrs.update(attrs)

    def to_dict(self) -> dict[str, Any]:
        return {
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "name": self.name,
            "kind": self.kind.value,
            "start": self.start,
            "end": self.end,
            "duration": self.duration,
            "status": self.status,
            "error": self.error,
            "attrs": dict(self.attrs),
        }

    @staticmethod
    def from_dict(d: Mapping[str, Any]) -> "Span":
        return Span(
            trace_id=str(d["trace_id"]),
            span_id=str(d["span_id"]),
            parent_id=d.get("parent_id"),
            name=str(d["name"]),
            kind=SpanKind(d["kind"]),
            start=float(d["start"]),
            end=None if d.get("end") is None else float(d["end"]),
            attrs=dict(d.get("attrs", {})),
            status=str(d.get("status", "ok")),
            error=d.get("error"),
        )


class _NullSpan:
    """The span the disabled tracer hands out: accepts everything, records
    nothing.  A single module-level instance is reused for every call."""

    __slots__ = ()
    trace_id = ""
    span_id = ""
    parent_id = None
    status = "ok"
    end: float | None = None

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc: object) -> None:
        return None

    def set(self, **attrs: Any) -> None:
        return None


NULL_SPAN = _NullSpan()


class NullTracer:
    """Disabled tracer: ``enabled`` is ``False``; every span is the shared
    no-op span.  Instrumented code must check ``enabled`` before doing any
    per-span work (building attribute dicts, reading clocks)."""

    enabled = False
    trace_id = ""

    def span(
        self,
        name: str,
        kind: "SpanKind | None" = None,
        parent: "Span | str | None" = None,
        attrs: Mapping[str, Any] | None = None,
    ) -> _NullSpan:
        return NULL_SPAN

    @property
    def spans(self) -> list[Span]:
        return []

    @property
    def metrics(self) -> MetricsRegistry:
        return _NULL_METRICS


NULL_TRACER = NullTracer()
_NULL_METRICS = MetricsRegistry()

#: The ambient tracer: whatever :func:`repro.telemetry.observe` (or an
#: entered span) activated on this thread/context.
_ACTIVE_TRACER: contextvars.ContextVar["Tracer | NullTracer"] = contextvars.ContextVar(
    "repro_active_tracer", default=NULL_TRACER
)
#: The ambient parent span within the active tracer.
_CURRENT_SPAN: contextvars.ContextVar[Span | None] = contextvars.ContextVar(
    "repro_current_span", default=None
)


def current_tracer() -> "Tracer | NullTracer":
    """The tracer instrumentation should emit into right now.

    Defaults to the disabled :data:`NULL_TRACER`; activated by
    :func:`repro.telemetry.observe` or by any entered span of a real tracer.
    """
    return _ACTIVE_TRACER.get()


def current_span() -> Span | None:
    """The innermost open span on this thread, if any."""
    return _CURRENT_SPAN.get()


class _OpenSpan:
    """Context manager returned by :meth:`Tracer.span`.

    Entering starts the clock and makes the span the ambient parent (and its
    tracer the ambient tracer) for the current thread; exiting stops the
    clock, restores the ambient state, and exports the finished span.
    """

    __slots__ = ("_tracer", "_span", "_tracer_token", "_span_token")

    def __init__(self, tracer: "Tracer", span: Span) -> None:
        self._tracer = tracer
        self._span = span
        self._tracer_token: contextvars.Token[Any] | None = None
        self._span_token: contextvars.Token[Any] | None = None

    def __enter__(self) -> Span:
        self._span.start = time.perf_counter()
        self._tracer_token = _ACTIVE_TRACER.set(self._tracer)
        self._span_token = _CURRENT_SPAN.set(self._span)
        return self._span

    def __exit__(self, exc_type: object, exc: object, tb: object) -> None:
        self._span.end = time.perf_counter()
        if exc is not None:
            self._span.status = "error"
            self._span.error = f"{type(exc).__name__}: {exc}"
        if self._span_token is not None:
            _CURRENT_SPAN.reset(self._span_token)
        if self._tracer_token is not None:
            _ACTIVE_TRACER.reset(self._tracer_token)
        self._tracer._finish(self._span)


class Tracer:
    """Thread-safe span recorder for one trace tree.

    Every finished span is appended to the in-memory list (the queryable
    read path) and handed to each exporter.  Span durations also feed the
    tracer's :class:`~repro.telemetry.metrics.MetricsRegistry` as
    per-kind histograms, so basic latency metrics exist without any extra
    instrumentation.
    """

    enabled = True

    def __init__(
        self,
        trace_id: str | None = None,
        exporters: tuple["SpanExporter", ...] = (),
        metrics: MetricsRegistry | None = None,
    ) -> None:
        self.trace_id = trace_id or uuid.uuid4().hex[:16]
        self.exporters: tuple[SpanExporter, ...] = exporters
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self._lock = threading.Lock()
        self._spans: list[Span] = []  # guarded-by: _lock
        self._ids = itertools.count(1)  # guarded-by: _lock

    # -- recording -----------------------------------------------------------

    def span(
        self,
        name: str,
        kind: SpanKind = SpanKind.INTERNAL,
        parent: Span | str | None = None,
        attrs: Mapping[str, Any] | None = None,
    ) -> _OpenSpan:
        """Open a span.  ``parent`` defaults to the thread's current span;
        pass a :class:`Span` (or span ID) explicitly when crossing threads."""
        if parent is None:
            ambient = _CURRENT_SPAN.get()
            parent_id = ambient.span_id if ambient is not None else None
        elif isinstance(parent, Span):
            parent_id = parent.span_id
        else:
            parent_id = parent
        # ID allocation is locked: spans open concurrently on worker threads
        # (CN001 — this next() was previously lock-free).
        with self._lock:
            span_id = f"{next(self._ids):08x}"
        span = Span(
            trace_id=self.trace_id,
            span_id=span_id,
            parent_id=parent_id,
            name=name,
            kind=kind,
            attrs=dict(attrs) if attrs else {},
        )
        return _OpenSpan(self, span)

    def _finish(self, span: Span) -> None:
        with self._lock:
            self._spans.append(span)
        self.metrics.histogram(
            f"span.{span.kind.value}.seconds", DURATION_BUCKETS
        ).observe(span.duration)
        for exporter in self.exporters:
            exporter.on_end(span)

    # -- read path -----------------------------------------------------------

    @property
    def spans(self) -> list[Span]:
        """Finished spans, in completion order (copy; safe to mutate)."""
        with self._lock:
            return list(self._spans)

    def spans_of(self, kind: SpanKind) -> list[Span]:
        return [s for s in self.spans if s.kind is kind]

    def find(self, span_id: str) -> Span | None:
        with self._lock:
            for span in self._spans:
                if span.span_id == span_id:
                    return span
        return None

    def children_of(self, span: Span | str) -> list[Span]:
        """Direct children of ``span`` among finished spans."""
        parent_id = span.span_id if isinstance(span, Span) else span
        return [s for s in self.spans if s.parent_id == parent_id]

    def ancestors_of(self, span: Span) -> list[Span]:
        """Chain of parents from ``span``'s parent up to the root."""
        by_id = {s.span_id: s for s in self.spans}
        out: list[Span] = []
        cursor = span.parent_id
        while cursor is not None and cursor in by_id:
            parent = by_id[cursor]
            out.append(parent)
            cursor = parent.parent_id
        return out

    def descendants_of(self, span: Span | str) -> list[Span]:
        """Every finished span transitively below ``span``."""
        root_id = span.span_id if isinstance(span, Span) else span
        spans = self.spans
        children: dict[str | None, list[Span]] = {}
        for s in spans:
            children.setdefault(s.parent_id, []).append(s)
        out: list[Span] = []
        frontier = [root_id]
        while frontier:
            next_frontier: list[str] = []
            for pid in frontier:
                for child in children.get(pid, []):
                    out.append(child)
                    next_frontier.append(child.span_id)
            frontier = next_frontier
        return out

    def close(self) -> None:
        """Close every exporter (flushes file-backed ones)."""
        for exporter in self.exporters:
            exporter.close()


def activate(tracer: "Tracer | NullTracer") -> contextvars.Token[Any]:
    """Make ``tracer`` the ambient tracer; returns the token for
    :func:`deactivate`.  Used by :func:`repro.telemetry.observe`."""
    return _ACTIVE_TRACER.set(tracer)


def deactivate(token: contextvars.Token[Any]) -> None:
    _ACTIVE_TRACER.reset(token)


__all__ = [
    "NULL_SPAN",
    "NULL_TRACER",
    "NullTracer",
    "Span",
    "SpanKind",
    "Tracer",
    "activate",
    "current_span",
    "current_tracer",
    "deactivate",
]
