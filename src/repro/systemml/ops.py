"""Generic distributed matrix operations on MapReduce — the SystemML gap.

Section 3: "SystemML provides a high-level language for expressing some
matrix operations such as matrix multiplication, division, and transpose,
**but not matrix inversion**".  This module supplies that operation set as
MapReduce jobs over DFS-resident matrices, which (a) positions the paper's
contribution — inversion is the one op these frameworks lacked — and (b)
gives the repository composable building blocks (the distributed residual
check, the apps' products) that run where the data lives.

Matrices live on the DFS in the row-chunk layout of Section 5.2: a directory
of ``part.<i>`` files, each a contiguous row slab, described by a small
``_meta`` file.  All jobs use ``m0`` mappers with block-wrap reads where a
product is involved.
"""

from __future__ import annotations

import json
from dataclasses import dataclass

import numpy as np

from ..dfs import formats
from ..dfs.filesystem import DFS
from ..linalg.blockwrap import contiguous_ranges, factor_grid
from ..mapreduce import (
    FnMapper,
    InputSplit,
    JobConf,
    MapReduceRuntime,
    TaskContext,
    splits_for_workers,
)


@dataclass(frozen=True)
class DistributedMatrix:
    """Handle to a row-chunked matrix directory on the DFS."""

    path: str
    rows: int
    cols: int
    chunks: int

    def chunk_path(self, i: int) -> str:
        return f"{self.path}/part.{i}"

    @property
    def meta_path(self) -> str:
        return f"{self.path}/_meta"

    def chunk_ranges(self) -> list[tuple[int, int]]:
        return contiguous_ranges(self.rows, self.chunks)


def save_matrix(
    dfs: DFS, path: str, matrix: np.ndarray, chunks: int = 4
) -> DistributedMatrix:
    """Write a matrix in the row-chunk layout (driver-side ingestion)."""
    m = np.asarray(matrix, dtype=np.float64)
    if m.ndim != 2:
        raise ValueError(f"need a 2-D matrix, got shape {m.shape}")
    handle = DistributedMatrix(path=path.rstrip("/"), rows=m.shape[0], cols=m.shape[1], chunks=chunks)
    for i, (r1, r2) in enumerate(handle.chunk_ranges()):
        formats.write_matrix(dfs, handle.chunk_path(i), m[r1:r2])
    dfs.write_text(
        handle.meta_path,
        json.dumps({"rows": m.shape[0], "cols": m.shape[1], "chunks": chunks}),
    )
    return handle


def load_meta(dfs: DFS, path: str) -> DistributedMatrix:
    meta = json.loads(dfs.read_text(f"{path.rstrip('/')}/_meta"))
    return DistributedMatrix(
        path=path.rstrip("/"), rows=meta["rows"], cols=meta["cols"], chunks=meta["chunks"]
    )


def read_matrix(dfs: DFS, handle: DistributedMatrix) -> np.ndarray:
    """Assemble a distributed matrix on the driver."""
    out = np.zeros((handle.rows, handle.cols))
    for i, (r1, r2) in enumerate(handle.chunk_ranges()):
        if r2 > r1:
            out[r1:r2] = formats.read_matrix(dfs, handle.chunk_path(i))
    return out


def _read_chunk(ctx: TaskContext, handle: DistributedMatrix, i: int) -> np.ndarray:
    return ctx.read_matrix(handle.chunk_path(i))


def _read_rows(
    ctx: TaskContext, handle: DistributedMatrix, r1: int, r2: int
) -> np.ndarray:
    """Row range [r1, r2) assembled from the overlapping chunk files."""
    out = np.zeros((r2 - r1, handle.cols))
    for i, (c1, c2) in enumerate(handle.chunk_ranges()):
        o1, o2 = max(c1, r1), min(c2, r2)
        if o1 < o2:
            chunk = _read_chunk(ctx, handle, i)
            out[o1 - r1 : o2 - r1] = chunk[o1 - c1 : o2 - c1]
    return out


class MatrixOps:
    """Distributed matrix operations over one runtime."""

    def __init__(self, runtime: MapReduceRuntime, m0: int = 4) -> None:
        if m0 < 1:
            raise ValueError("m0 must be >= 1")
        self.runtime = runtime
        self.m0 = m0

    @property
    def dfs(self) -> DFS:
        return self.runtime.dfs

    def _run_map_only(self, name: str, fn) -> None:
        conf = JobConf(
            name=name,
            mapper_factory=lambda: FnMapper(fn),
            splits=splits_for_workers(self.m0),
        )
        self.runtime.run_job(conf)

    def _make_output(self, path: str, rows: int, cols: int) -> DistributedMatrix:
        out = DistributedMatrix(path=path.rstrip("/"), rows=rows, cols=cols, chunks=self.m0)
        self.dfs.write_text(
            out.meta_path,
            json.dumps({"rows": rows, "cols": cols, "chunks": self.m0}),
        )
        return out

    # -- operations ---------------------------------------------------------------

    def transpose(self, a: DistributedMatrix, out_path: str) -> DistributedMatrix:
        """``A^T``: mapper j writes row chunk j of the transpose, reading the
        corresponding column band from every input chunk."""
        out = self._make_output(out_path, a.cols, a.rows)
        ranges = contiguous_ranges(a.cols, self.m0)

        def do(ctx: TaskContext, split: InputSplit) -> None:
            j = split.payload
            c1, c2 = ranges[j]
            if c2 <= c1:
                return
            band = np.zeros((c2 - c1, a.rows))
            for i, (r1, r2) in enumerate(a.chunk_ranges()):
                if r2 > r1:
                    chunk = _read_chunk(ctx, a, i)
                    band[:, r1:r2] = chunk[:, c1:c2].T
            ctx.write_bytes(out.chunk_path(j), formats.encode_matrix(band))

        self._run_map_only(f"transpose:{out_path}", do)
        return out

    def add(
        self, a: DistributedMatrix, b: DistributedMatrix, out_path: str,
        *, alpha: float = 1.0, beta: float = 1.0,
    ) -> DistributedMatrix:
        """``alpha A + beta B`` (elementwise; covers subtraction)."""
        if (a.rows, a.cols) != (b.rows, b.cols):
            raise ValueError(f"shape mismatch: {a.rows}x{a.cols} vs {b.rows}x{b.cols}")
        out = self._make_output(out_path, a.rows, a.cols)
        ranges = contiguous_ranges(a.rows, self.m0)

        def do(ctx: TaskContext, split: InputSplit) -> None:
            j = split.payload
            r1, r2 = ranges[j]
            if r2 <= r1:
                return
            result = alpha * _read_rows(ctx, a, r1, r2) + beta * _read_rows(ctx, b, r1, r2)
            ctx.write_bytes(out.chunk_path(j), formats.encode_matrix(result))

        self._run_map_only(f"add:{out_path}", do)
        return out

    def elementwise_divide(
        self, a: DistributedMatrix, b: DistributedMatrix, out_path: str
    ) -> DistributedMatrix:
        """SystemML's elementwise division ``A / B``."""
        if (a.rows, a.cols) != (b.rows, b.cols):
            raise ValueError("shape mismatch")
        out = self._make_output(out_path, a.rows, a.cols)
        ranges = contiguous_ranges(a.rows, self.m0)

        def do(ctx: TaskContext, split: InputSplit) -> None:
            j = split.payload
            r1, r2 = ranges[j]
            if r2 <= r1:
                return
            result = _read_rows(ctx, a, r1, r2) / _read_rows(ctx, b, r1, r2)
            ctx.write_bytes(out.chunk_path(j), formats.encode_matrix(result))

        self._run_map_only(f"divide:{out_path}", do)
        return out

    def scale(self, a: DistributedMatrix, factor: float, out_path: str) -> DistributedMatrix:
        return self.add(a, a, out_path, alpha=factor, beta=0.0)

    def multiply(
        self, a: DistributedMatrix, b: DistributedMatrix, out_path: str
    ) -> DistributedMatrix:
        """``A @ B`` with block-wrap reads (Section 6.2): worker ``j1*f2+j2``
        computes output block (row band j1 of A) x (column band j2 of B)."""
        if a.cols != b.rows:
            raise ValueError(f"inner dims differ: {a.cols} vs {b.rows}")
        out = self._make_output(out_path, a.rows, b.cols)
        f1, f2 = factor_grid(self.m0)
        row_ranges = contiguous_ranges(a.rows, f1)
        col_ranges = contiguous_ranges(b.cols, f2)

        def do(ctx: TaskContext, split: InputSplit) -> None:
            j1, j2 = divmod(split.payload, f2)
            r1, r2 = row_ranges[j1]
            c1, c2 = col_ranges[j2]
            if r2 <= r1 or c2 <= c1:
                return
            a_rows = _read_rows(ctx, a, r1, r2)
            b_cols = np.zeros((b.rows, c2 - c1))
            for i, (br1, br2) in enumerate(b.chunk_ranges()):
                if br2 > br1:
                    b_cols[br1:br2] = _read_chunk(ctx, b, i)[:, c1:c2]
            ctx.report_flops(float(r2 - r1) * (c2 - c1) * a.cols)
            ctx.write_bytes(
                f"{out.path}/cell.{j1}.{j2}",
                formats.encode_matrix(a_rows @ b_cols),
            )

        self._run_map_only(f"multiply:{out_path}", do)

        # Stitch cells into the row-chunk layout with a second map-only pass
        # (one writer per output chunk file, Section 5.2's single-writer rule).
        out_ranges = out.chunk_ranges()

        def stitch(ctx: TaskContext, split: InputSplit) -> None:
            j = split.payload
            r1, r2 = out_ranges[j]
            if r2 <= r1:
                return
            rows = np.zeros((r2 - r1, out.cols))
            for j1, (g1, g2) in enumerate(row_ranges):
                o1, o2 = max(g1, r1), min(g2, r2)
                if o1 >= o2:
                    continue
                for j2, (c1, c2) in enumerate(col_ranges):
                    if c2 <= c1:
                        continue
                    cell = ctx.read_matrix(f"{out.path}/cell.{j1}.{j2}")
                    rows[o1 - r1 : o2 - r1, c1:c2] = cell[o1 - g1 : o2 - g1]
            ctx.write_bytes(out.chunk_path(j), formats.encode_matrix(rows))

        self._run_map_only(f"multiply-stitch:{out_path}", stitch)
        return out

    def frobenius_norm(self, a: DistributedMatrix) -> float:
        """``||A||_F`` via map-side partial sums and a single reducer."""
        from ..mapreduce import FnReducer

        ranges = contiguous_ranges(a.rows, self.m0)

        def map_fn(ctx: TaskContext, split: InputSplit) -> None:
            j = split.payload
            r1, r2 = ranges[j]
            partial = 0.0
            if r2 > r1:
                rows = _read_rows(ctx, a, r1, r2)
                partial = float(np.sum(rows * rows))
            ctx.emit("sumsq", partial)

        def reduce_fn(ctx: TaskContext, key, values) -> None:
            ctx.emit(key, sum(values))

        conf = JobConf(
            name=f"norm:{a.path}",
            mapper_factory=lambda: FnMapper(map_fn),
            reducer_factory=lambda: FnReducer(reduce_fn),
            splits=splits_for_workers(self.m0),
            num_reduce_tasks=1,
        )
        result = self.runtime.run_job(conf)
        ((_, total),) = result.reduce_outputs[0]
        return float(np.sqrt(total))
