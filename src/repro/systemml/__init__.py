"""SystemML-style distributed matrix operations on MapReduce (Section 3's
related framework, which offered multiplication/division/transpose "but not
matrix inversion" — the gap this paper fills)."""

from .ops import (
    DistributedMatrix,
    MatrixOps,
    load_meta,
    read_matrix,
    save_matrix,
)

__all__ = [
    "DistributedMatrix",
    "MatrixOps",
    "load_meta",
    "read_matrix",
    "save_matrix",
]
