"""repro — reproduction of *Scalable Matrix Inversion Using MapReduce*
(Xiang, Meng, Aboulnaga; HPDC 2014).

The package implements the paper's contribution — recursive block-LU matrix
inversion as a pipeline of MapReduce jobs — together with every substrate it
runs on (a MapReduce engine, an HDFS-like DFS, a cluster simulator) and the
baselines it is evaluated against (a ScaLAPACK-style MPI implementation,
Gauss-Jordan elimination).

Quickstart
----------
>>> import numpy as np
>>> from repro import invert
>>> rng = np.random.default_rng(0)
>>> a = rng.standard_normal((128, 128))
>>> result = invert(a)
>>> np.max(np.abs(np.eye(128) - a @ result.inverse)) < 1e-8
True

Observability
-------------
Wrap any of the above in :func:`observe` to capture a span tree, metrics,
and a per-job timeline of everything that ran (see ``docs/observability.md``)::

>>> from repro import observe
>>> with observe() as obs:
...     result = invert(a)
>>> print(obs.render_timeline())          # doctest: +SKIP
"""

from .inversion import InversionConfig, InversionResult, MatrixInverter, invert
from .linalg import lu_decompose, LUResult
from .mapreduce.counters import Counters
from .telemetry import (
    HistoryReport,
    MetricsRegistry,
    Observation,
    TraceConfig,
    observe,
)

__version__ = "1.1.0"

__all__ = [
    "Counters",
    "HistoryReport",
    "InversionConfig",
    "InversionResult",
    "MatrixInverter",
    "LUResult",
    "MetricsRegistry",
    "Observation",
    "TraceConfig",
    "invert",
    "lu_decompose",
    "observe",
    "__version__",
]
