"""Replay a real pipeline run on a simulated EC2 cluster — the mechanism
behind the paper-scale figures.

Executes M5's pipeline at 1/128 linear scale, then replays the recorded task
DAG on simulated EC2-medium clusters of increasing size with the work lifted
to the paper's order 16384, printing a miniature Figure 6.

Run with:  python examples/cluster_replay.py
"""

from repro.cluster import EC2_MEDIUM
from repro.experiments import ExperimentHarness
from repro.experiments.report import seconds_human
from repro.workloads import get


def main() -> None:
    suite = get("M5")
    scale = 128
    n, nb = suite.order(scale), suite.nb(scale)
    harness = ExperimentHarness()

    print(f"M5: paper order {suite.paper_order}, executing at order {n} "
          f"(nb={nb})\n")
    print(f"{'nodes':>6}  {'simulated time':>15}  {'ideal':>10}  {'util':>6}")
    t_first = None
    for m0 in (2, 4, 8, 16, 32):
        executed = harness.run(n, nb, m0, seed=suite.seed)
        report = harness.replay(
            executed, num_nodes=m0, paper_n=suite.paper_order, node=EC2_MEDIUM
        )
        if t_first is None:
            t_first = report.makespan * m0
        ideal = t_first / m0
        print(f"{m0:>6}  {seconds_human(report.makespan):>15}  "
              f"{seconds_human(ideal):>10}  {report.utilization:>5.0%}")

    print("\nper-job timeline at 8 nodes:")
    executed = harness.run(n, nb, 8, seed=suite.seed)
    report = harness.replay(
        executed, num_nodes=8, paper_n=suite.paper_order, node=EC2_MEDIUM
    )
    for job in report.jobs:
        print(f"  {job.name:<26} start {job.start:9.1f}s  "
              f"duration {job.duration:8.1f}s")


if __name__ == "__main__":
    main()
