"""Quickstart: invert a matrix on the MapReduce pipeline.

Run with:  python examples/quickstart.py
"""

import numpy as np

from repro import InversionConfig, invert

def main() -> None:
    rng = np.random.default_rng(0)
    n = 256
    a = rng.random((n, n))  # the paper's workload: uniform random entries

    # nb is the bound value (blocks <= nb are LU-decomposed on the master);
    # m0 is the cluster width (map/reduce tasks per job).
    config = InversionConfig(nb=64, m0=4)
    result = invert(a, config)

    print(f"matrix order:          {n}")
    print(f"recursion depth d:     {result.plan.depth}")
    print(f"MapReduce jobs (2^d+1): {result.num_jobs}")
    print(f"max |I - A A^-1|:      {result.residual(a):.3e}  (paper bound: 1e-5)")
    print(f"DFS bytes read:        {result.io.bytes_read / 1e6:.1f} MB")
    print(f"DFS bytes written:     {result.io.bytes_written / 1e6:.1f} MB")
    print()
    print("pipeline steps:")
    for job in result.record.job_results:
        maps = len(job.map_traces)
        reds = len(job.reduce_traces)
        print(f"  {job.name:<28} {maps} map tasks, {reds} reduce tasks")

    # Cross-check against NumPy.
    assert np.allclose(result.inverse, np.linalg.inv(a), atol=1e-8)
    print("\nmatches numpy.linalg.inv ✓")


if __name__ == "__main__":
    main()
