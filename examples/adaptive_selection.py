"""Adaptive backend choice (Section 8): pick ScaLAPACK or MapReduce per
input matrix and cluster, then execute the chosen engine.

Run with:  python examples/adaptive_selection.py
"""

import numpy as np

from repro.adaptive import adaptive_invert, choose_backend
from repro.cluster import ClusterSpec, EC2_MEDIUM


def main() -> None:
    print("decision landscape (EC2 medium clusters, paper-scale model):\n")
    print(f"{'order':>8}  {'8 nodes':>12}  {'64 nodes':>12}")
    for n in (1_000, 20_480, 40_960, 102_400, 300_000):
        row = []
        for m0 in (8, 64):
            d = choose_backend(n, ClusterSpec(m0, EC2_MEDIUM))
            label = d.backend + ("" if d.scalapack_fits_memory else " (mem!)")
            row.append(label)
        print(f"{n:>8}  {row[0]:>12}  {row[1]:>12}")

    print("\nwhy, for order 102400 on 8 nodes:")
    d = choose_backend(102_400, ClusterSpec(8, EC2_MEDIUM))
    print(f"  {d.reason}")
    print(f"  predicted hours: " + ", ".join(
        f"{k} {v / 3600:.1f}" for k, v in d.predicted_seconds.items()
    ))

    print("\nexecuting adaptively at working scale:")
    rng = np.random.default_rng(3)
    for n, m0 in ((16, 8), (96, 8), (96, 64)):
        a = rng.random((n, n)) + 0.1 * np.eye(n)
        res = adaptive_invert(a, ClusterSpec(m0, EC2_MEDIUM))
        resid = np.max(np.abs(np.eye(n) - a @ res.inverse))
        print(f"  n={n:>3}, {m0:>2} nodes -> {res.decision.backend:<12} "
              f"residual {resid:.1e}")


if __name__ == "__main__":
    main()
