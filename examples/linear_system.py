"""Solving linear systems with the distributed inverse (Section 1's first
motivating application): invert once, serve many right-hand sides.

Run with:  python examples/linear_system.py
"""

import numpy as np

from repro.apps import LinearSolver
from repro.inversion import InversionConfig


def main() -> None:
    rng = np.random.default_rng(42)
    n = 200

    # A diagonally dominant system (e.g. a discretized PDE operator).
    a = rng.uniform(-1, 1, (n, n))
    np.fill_diagonal(a, np.abs(a).sum(axis=1) + 1.0)

    print(f"inverting the {n}x{n} operator through the MapReduce pipeline...")
    solver = LinearSolver(a, InversionConfig(nb=50, m0=4))
    print(f"pipeline ran {solver.result.num_jobs} jobs; "
          f"residual {solver.result.residual(a):.2e}")

    # Serve a batch of right-hand sides with plain matrix-vector products.
    print("\nsolving 5 right-hand sides against the cached inverse:")
    for k in range(5):
        x_true = rng.standard_normal(n)
        b = a @ x_true
        report = solver.solve(b)
        err = np.max(np.abs(report.x - x_true))
        print(f"  rhs {k}: relative residual {report.residual_norm:.2e}, "
              f"max error vs truth {err:.2e}")


if __name__ == "__main__":
    main()
