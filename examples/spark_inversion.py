"""The Section 8 future work, running: block-LU inversion on the in-memory
RDD engine, compared against the Hadoop-style pipeline.

Run with:  python examples/spark_inversion.py
"""

import numpy as np

from repro import InversionConfig, invert
from repro.spark import SparkContext, SparkInversionConfig, SparkMatrixInverter


def main() -> None:
    rng = np.random.default_rng(8)
    n = 160
    a = rng.random((n, n)) + 0.1 * np.eye(n)

    print("Hadoop-style pipeline (intermediates on the DFS):")
    hadoop = invert(a, InversionConfig(nb=40, m0=4))
    print(f"  residual {hadoop.residual(a):.2e}, "
          f"DFS reads {hadoop.io.bytes_read / 1e6:.1f} MB")

    print("\nSpark-style port (intermediates in cached RDD partitions):")
    sc = SparkContext()
    inverter = SparkMatrixInverter(SparkInversionConfig(nb=40, chunks=4), sc=sc)
    spark = inverter.invert(a)
    print(f"  residual {spark.residual(a):.2e}, "
          f"external reads {spark.external_bytes_read / 1e6:.2f} MB "
          f"(input only), shuffle {spark.metrics.shuffle_bytes / 1e6:.1f} MB, "
          f"broadcast {spark.metrics.broadcast_bytes / 1e6:.2f} MB")
    print(f"  cached partitions: {spark.cached_partitions}")

    reduction = hadoop.io.bytes_read / spark.external_bytes_read
    print(f"\nexternal read I/O reduced {reduction:.0f}x — the paper's "
          "Section 8 prediction")
    assert np.allclose(hadoop.inverse, spark.inverse, atol=1e-9)
    print("both engines produce the same inverse ✓")

    # Lineage-based fault tolerance: lose a cached partition, recompute.
    l2 = inverter.intermediates["/Root/L2"]
    sc.evict(l2, 0)
    l2.collect()
    print(f"after evicting a cached L2' partition: "
          f"{sc.metrics.recomputations} partition(s) recomputed via lineage ✓")


if __name__ == "__main__":
    main()
