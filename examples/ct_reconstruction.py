"""CT image reconstruction (Section 1's third motivating application):
the detector sees T = M S; recover the material image as S = M^-1 T.

Run with:  python examples/ct_reconstruction.py
"""

import numpy as np

from repro.apps import CTReconstructor, projection_matrix, shepp_logan_1d
from repro.inversion import InversionConfig


def ascii_plot(values: np.ndarray, width: int = 60, label: str = "") -> None:
    lo, hi = float(values.min()), float(values.max())
    scale = (hi - lo) or 1.0
    resampled = np.interp(
        np.linspace(0, len(values) - 1, width), np.arange(len(values)), values
    )
    bars = " .:-=+*#%@"
    line = "".join(bars[int((v - lo) / scale * (len(bars) - 1))] for v in resampled)
    print(f"  {label:<14} |{line}|")


def main() -> None:
    n = 192  # detector/pixel count

    print(f"building a synthetic {n}x{n} projection operator...")
    m = projection_matrix(n, rays_per_pixel=4, seed=3)

    print("inverting the projection matrix on the MapReduce pipeline...")
    ct = CTReconstructor(m, InversionConfig(nb=48, m0=4))

    phantom = shepp_logan_1d(n)
    detector = ct.scan(phantom, noise=0.0)
    report = ct.reconstruct(detector, phantom)

    print(f"\nrelative reconstruction error: {report.relative_error:.2e}")
    print(f"max pixel error:               {report.max_abs_error:.2e}\n")
    ascii_plot(phantom, label="phantom")
    ascii_plot(detector, label="detector (MS)")
    ascii_plot(report.reconstructed, label="reconstructed")

    # With detector noise the inverse amplifies but stays usable.
    noisy = ct.scan(phantom, noise=1e-4, seed=9)
    noisy_report = ct.reconstruct(noisy, phantom)
    print(f"\nwith detector noise 1e-4: relative error "
          f"{noisy_report.relative_error:.2e}")


if __name__ == "__main__":
    main()
