"""Hadoop Streaming on the engine: external-process mapper and reducer over
the tab-separated line protocol — how Python code ran on the paper's Hadoop.

Run with:  python examples/streaming_wordcount.py
"""

import sys

from repro.mapreduce import MapReduceRuntime
from repro.mapreduce.streaming import streaming_job

MAPPER = [
    sys.executable,
    "-c",
    "import sys\n"
    "for line in sys.stdin:\n"
    "    for word in line.split():\n"
    "        print(f'{word}\\t1')",
]

REDUCER = [
    sys.executable,
    "-c",
    "import sys, collections\n"
    "counts = collections.Counter()\n"
    "for line in sys.stdin:\n"
    "    word, n = line.rstrip('\\n').split('\\t')\n"
    "    counts[word] += int(n)\n"
    "for word in sorted(counts):\n"
    "    print(f'{word}\\t{counts[word]}')",
]


def main() -> None:
    runtime = MapReduceRuntime()
    runtime.dfs.write_text(
        "/input/part0",
        "matrix inversion using mapreduce\nscalable matrix inversion",
    )
    runtime.dfs.write_text(
        "/input/part1",
        "mapreduce pipelines invert the matrix\nlu decomposition",
    )

    conf = streaming_job(
        name="streaming-wordcount",
        input_paths=["/input/part0", "/input/part1"],
        mapper_command=MAPPER,
        reducer_command=REDUCER,
        num_reduce_tasks=2,
    )
    print("running: hadoop-streaming style job, 2 mappers, 2 reducers")
    result = runtime.run_job(conf)

    counts = sorted(
        (k, int(v))
        for pairs in result.reduce_outputs.values()
        for k, v in pairs
    )
    print("\nword counts:")
    for word, n in counts:
        print(f"  {word:<15} {n}")
    runtime.shutdown()


if __name__ == "__main__":
    main()
