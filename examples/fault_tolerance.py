"""Fault tolerance demo — the Section 7.4 scenario in miniature.

A mapper of the final triangular-inversion job is killed on its first
attempt; the JobTracker reschedules it and the run completes with a correct
inverse, exactly the behaviour the paper credits MapReduce for.

Run with:  python examples/fault_tolerance.py
"""

import numpy as np

from repro import InversionConfig, invert
from repro.mapreduce import FailOnce, MapReduceRuntime, TaskKind
from repro.mapreduce.counters import FAILED_MAPS, LAUNCHED_MAPS, TASK_GROUP


def main() -> None:
    rng = np.random.default_rng(1)
    n = 160
    a = rng.random((n, n))

    policy = FailOnce(
        job_substring="invert-final", kind=TaskKind.MAP, task_index=1
    )
    runtime = MapReduceRuntime(fault_policy=policy)
    print("running the pipeline with an injected mapper failure in the "
          "final inversion job...")
    result = invert(a, InversionConfig(nb=40, m0=4), runtime=runtime)
    runtime.shutdown()

    final = next(j for j in result.record.job_results if j.name == "invert-final")
    launched = final.counters.value(TASK_GROUP, LAUNCHED_MAPS)
    failed = final.counters.value(TASK_GROUP, FAILED_MAPS)
    print(f"\nfinal job: {launched} map attempts launched, {failed} failed, "
          f"retries per task: {final.map_retries}")
    print(f"residual after recovery: {result.residual(a):.3e}")
    assert result.residual(a) < 1e-5
    print("the failed mapper was rescheduled and the inverse is correct ✓")

    # The same failure made permanent kills the job cleanly.
    from repro.mapreduce import FailAlways, JobFailedError

    runtime = MapReduceRuntime(fault_policy=FailAlways(kind=TaskKind.MAP, task_index=1))
    try:
        invert(a, InversionConfig(nb=40, m0=4), runtime=runtime)
    except JobFailedError as exc:
        print(f"\npermanent failure path: {exc}")
    finally:
        runtime.shutdown()


if __name__ == "__main__":
    main()
