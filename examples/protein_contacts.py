"""Protein-contact prediction via precision-matrix estimation (Section 1's
bioinformatics motivation, after Marks et al. 2011): direct couplings are the
large off-diagonal entries of the *inverse* covariance.

Run with:  python examples/protein_contacts.py
"""

import numpy as np

from repro.apps import (
    precision_from_contacts,
    predict_contacts,
    sample_observations,
    synthetic_contacts,
)
from repro.inversion import InversionConfig


def main() -> None:
    n_sites, n_contacts, n_samples = 60, 15, 20_000

    print(f"synthetic protein: {n_sites} sites, {n_contacts} true contacts, "
          f"{n_samples} sequence samples")
    contacts = synthetic_contacts(n_sites, n_contacts, seed=11)
    precision = precision_from_contacts(n_sites, contacts)
    samples = sample_observations(precision, n_samples, seed=12)

    print("inverting the empirical covariance on the MapReduce pipeline...")
    prediction = predict_contacts(
        samples, n_contacts, true_contacts=contacts,
        config=InversionConfig(nb=16, m0=4),
    )

    print(f"\ntop-{n_contacts} precision: {prediction.true_positive_rate:.0%} "
          "of predicted couplings are true contacts")
    truth = set(contacts)
    print("\npredicted couplings (* = true contact):")
    for i, j in prediction.predicted:
        mark = "*" if (i, j) in truth else " "
        print(f"  {mark} ({i:2d}, {j:2d})")

    # Contrast: ranking by raw covariance conflates transitive correlations.
    cov = np.cov(samples.T)
    raw_scores = sorted(
        ((abs(cov[i, j]), i, j) for i in range(n_sites) for j in range(i + 2, n_sites)),
        reverse=True,
    )[:n_contacts]
    raw_hits = sum(1 for _, i, j in raw_scores if (i, j) in truth)
    print(f"\nraw-covariance baseline: {raw_hits}/{n_contacts} correct "
          f"(precision-matrix ranking: "
          f"{int(prediction.true_positive_rate * n_contacts)}/{n_contacts})")


if __name__ == "__main__":
    main()
