"""Eigenpair refinement by inverse iteration (Section 1's second motivating
application): v_{k+1} = (A - mu I)^-1 v_k / ||...||, with the shifted inverse
computed by the MapReduce pipeline.

Run with:  python examples/eigen_inverse_iteration.py
"""

import numpy as np

from repro.apps import inverse_iteration
from repro.inversion import InversionConfig


def main() -> None:
    rng = np.random.default_rng(7)
    n = 160
    g = rng.standard_normal((n, n))
    a = g + g.T  # symmetric, real spectrum

    true_eigs = np.linalg.eigvalsh(a)
    # A rough eigenvalue estimate: the largest eigenvalue plus noise, as one
    # might get from a few power-method steps.
    mu = true_eigs[-1] * 1.02

    print(f"refining the eigenvalue nearest mu = {mu:.4f} "
          f"(true value {true_eigs[-1]:.6f})")
    result = inverse_iteration(a, mu, config=InversionConfig(nb=40, m0=4), seed=0)

    print(f"converged:      {result.converged} in {result.iterations} iterations")
    print(f"eigenvalue:     {result.eigenvalue:.12f}")
    print(f"true value:     {true_eigs[-1]:.12f}")
    print(f"|A v - λ v|:    {result.residual(a):.3e}")
    print("\nRayleigh-quotient history (last 5):")
    for lam in result.history[-5:]:
        print(f"  {lam:.12f}")


if __name__ == "__main__":
    main()
